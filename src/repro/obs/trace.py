"""Request/batch tracing with a JSONL sink and the ``repro-trace`` CLI.

The service answers one request from many places — coalesced onto a
peer, store hits, in-flight merges, lease-parked peers, fresh
simulation across process workers and remote HTTP agents — so "where
did the time go" is unanswerable from any single process's logs.  This
module gives every request a **trace**: a tree of timed spans written
as JSON lines to a shared sink directory, with the tree connected
across processes by a ``trace_id:span_id`` context string that rides

* the ``X-Repro-Trace`` HTTP header (client -> service),
* process-worker task tuples (:func:`repro.service.transport.pack_task`),
* remote-agent ndjson ``task`` events (:mod:`repro.service.worker`).

Design constraints, in order:

1. **Read-only.** Tracing never touches results: rows are bit-for-bit
   identical traced vs untraced (asserted by
   ``tests/service/test_observability.py`` and the ``obs_overhead``
   benchmark).
2. **Free when off.** The module-level tracer defaults to
   :data:`NULL_TRACER`; every instrumentation site is gated on
   ``tracer.enabled`` (a plain attribute load) and the no-op span is a
   shared singleton, so the disabled hot path allocates nothing.
3. **Crash-tolerant sink.** Each process appends completed spans to its
   own ``spans-*.jsonl`` file (one ``write`` + ``flush`` per span,
   under a lock); readers tolerate torn lines and orphaned spans, so a
   killed worker costs its unflushed spans, never the sink.

Timing: span *start* is wall-clock (``time.time``) so spans from
different processes on one host line up in the waterfall; span
*duration* is a ``time.perf_counter`` delta so it is monotonic.

The ``repro-trace`` CLI reconstructs span trees from a sink::

    python -m repro.obs.trace ls       TRACE_DIR
    python -m repro.obs.trace show     TRACE_DIR [TRACE_PREFIX]
    python -m repro.obs.trace summarize TRACE_DIR [TRACE_PREFIX]

``show`` prints an ASCII waterfall; ``summarize`` attributes elapsed
time to stage and batch source and prints the critical path — the
chain that decides whether the next optimisation should attack decode
dispatch, store parse or queue wait.
"""

import argparse
import json
import os
import sys
import threading
import time

from repro.obs import phases as _phases

__all__ = [
    "TRACE_HEADER", "Span", "Tracer", "NullTracer", "NULL_SPAN",
    "NULL_TRACER", "parse_context", "get_tracer", "set_tracer",
    "configure", "disable", "current_span", "sink_dir", "main",
]

#: HTTP header carrying a client-supplied trace context ("tid:sid").
TRACE_HEADER = "X-Repro-Trace"

_MAX_ID_CHARS = 64


def _new_id():
    return os.urandom(8).hex()


def parse_context(text):
    """``"trace_id:span_id"`` -> ``(trace_id, span_id)``, else ``None``.

    Deliberately forgiving about id contents (any printable token) but
    strict about shape, so a malformed client header degrades to a
    fresh trace instead of corrupting the sink.
    """
    if not isinstance(text, str):
        return None
    trace_id, sep, span_id = text.partition(":")
    if not sep or not trace_id or not span_id:
        return None
    if len(trace_id) > _MAX_ID_CHARS or len(span_id) > _MAX_ID_CHARS:
        return None
    if not (trace_id.isprintable() and span_id.isprintable()):
        return None
    return trace_id, span_id


# --------------------------------------------------------------------------
# Current-span bookkeeping (per thread).

_state = threading.local()


def current_span():
    """The innermost span entered (``with span:``) on this thread."""
    stack = getattr(_state, "stack", None)
    return stack[-1] if stack else None


def _push(span):
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    stack.append(span)


def _pop(span):
    stack = getattr(_state, "stack", None)
    if stack and stack[-1] is span:
        stack.pop()


class Span:
    """One timed node of a trace tree.  Written to the sink on ``end``.

    Spans are cheap, single-owner objects: ``annotate`` and ``end`` are
    called by the component that created the span, under that
    component's own locking (the broker mutates its spans under the
    broker lock; workers own their spans outright).
    """

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "ts", "_t0", "attrs", "_ended")

    enabled = True

    def __init__(self, tracer, name, trace_id, parent_id, attrs):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.ts = time.time()
        self._t0 = time.perf_counter()
        self.attrs = attrs
        self._ended = False

    def context(self):
        """Propagation token: ``"trace_id:span_id"``."""
        return "%s:%s" % (self.trace_id, self.span_id)

    def child(self, name, **attrs):
        """A new span parented under this one (same trace)."""
        return Span(self._tracer, name, self.trace_id, self.span_id, attrs)

    def annotate(self, **attrs):
        """Merge ``attrs`` into the record written at ``end``."""
        self.attrs.update(attrs)

    def end(self, **attrs):
        """Close the span and append its record to the sink (idempotent)."""
        if self._ended:
            return
        self._ended = True
        duration = time.perf_counter() - self._t0
        if attrs:
            self.attrs.update(attrs)
        self._tracer._write_span(self, duration)

    # ``with span:`` makes the span *current* for the thread so kernel
    # phase hooks nest under it.
    def __enter__(self):
        _push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        _pop(self)
        if exc is not None:
            self.end(error=repr(exc))
        else:
            self.end()
        return False


class _NullSpan:
    """Shared do-nothing span: every operation is a no-op returning fast."""

    __slots__ = ()

    enabled = False
    trace_id = None
    span_id = None
    parent_id = None

    def context(self):
        return None

    def child(self, name, **attrs):
        return self

    def annotate(self, **attrs):
        pass

    def end(self, **attrs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __bool__(self):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Appends completed spans to one JSONL file per process.

    ``proc`` labels the emitting process in every record (``service``,
    ``pw0`` for process worker 0, a remote agent's name, ...); the sink
    filename embeds it plus the pid plus a random token so concurrent
    processes — including several on different hosts sharing a network
    filesystem — never collide.
    """

    enabled = True

    def __init__(self, trace_dir, proc=None):
        self.trace_dir = str(trace_dir)
        self.proc = str(proc) if proc else "pid%d" % os.getpid()
        os.makedirs(self.trace_dir, exist_ok=True)
        self._path = os.path.join(
            self.trace_dir,
            "spans-%s-%d-%s.jsonl" % (self.proc, os.getpid(), _new_id()[:6]))
        self._lock = threading.Lock()
        self._file = None

    # -- span creation -----------------------------------------------------

    def start(self, name, context=None, **attrs):
        """A root-ish span: child of ``context`` when given, else a new
        trace.  Invalid contexts fall back to a fresh trace (never
        raise — a garbled client header must not fail the request)."""
        parsed = parse_context(context) if context else None
        if parsed is not None:
            trace_id, parent_id = parsed
        else:
            trace_id, parent_id = _new_id(), None
        return Span(self, name, trace_id, parent_id, attrs)

    def resume(self, context, name, **attrs):
        """Continue a propagated context in this process.

        Returns :data:`NULL_SPAN` when ``context`` is missing or
        malformed: an untraced task stays untraced rather than
        spawning an orphan trace per batch.
        """
        parsed = parse_context(context) if context else None
        if parsed is None:
            return NULL_SPAN
        trace_id, parent_id = parsed
        return Span(self, name, trace_id, parent_id, attrs)

    def event(self, name, parent, ts, dur, attrs=None):
        """Record an already-measured section as a completed span.

        ``parent`` is a :class:`Span` or a context string; ``ts`` the
        wall-clock start, ``dur`` the elapsed seconds.  Used by the
        kernel phase hooks and by broker paths (store hits) whose
        timing is taken inline rather than via a live span object.
        """
        if isinstance(parent, str):
            parsed = parse_context(parent)
            if parsed is None:
                return
            trace_id, parent_id = parsed
        elif parent is not None and parent.enabled:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            return
        self._append({"trace": trace_id, "span": _new_id(),
                      "parent": parent_id, "name": name, "ts": ts,
                      "dur": dur, "proc": self.proc,
                      "attrs": dict(attrs) if attrs else {}})

    # -- sink --------------------------------------------------------------

    def _write_span(self, span, duration):
        self._append({"trace": span.trace_id, "span": span.span_id,
                      "parent": span.parent_id, "name": span.name,
                      "ts": span.ts, "dur": duration, "proc": self.proc,
                      "attrs": span.attrs})

    def _append(self, record):
        if not record["attrs"]:
            del record["attrs"]
        line = json.dumps(record, separators=(",", ":"),
                          default=str) + "\n"
        with self._lock:
            if self._file is None:
                self._file = open(self._path, "a", encoding="utf-8")
            self._file.write(line)
            self._file.flush()

    def close(self):
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class NullTracer:
    """The disabled tracer: every span it hands out is the null span."""

    enabled = False
    trace_dir = None
    proc = None

    def start(self, name, context=None, **attrs):
        return NULL_SPAN

    def resume(self, context, name, **attrs):
        return NULL_SPAN

    def event(self, name, parent, ts, dur, attrs=None):
        pass

    def close(self):
        pass


NULL_TRACER = NullTracer()

_tracer = NULL_TRACER


def get_tracer():
    """The process-wide tracer (the null tracer unless configured)."""
    return _tracer


def set_tracer(tracer):
    """Install ``tracer`` process-wide; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def _phase_hook(name, ts, dur, attrs=None):
    """Kernel phase -> completed child span of the thread's current span."""
    span = current_span()
    if span is None or not span.enabled:
        return
    _tracer.event(name, span, ts, dur, attrs)


def configure(trace_dir, proc=None):
    """Enable tracing into ``trace_dir`` and install the phase hook."""
    tracer = Tracer(trace_dir, proc=proc)
    set_tracer(tracer)
    _phases.set_phase_hook(_phase_hook)
    return tracer


def disable():
    """Back to the null tracer; closes the old sink file."""
    previous = set_tracer(NULL_TRACER)
    _phases.set_phase_hook(None)
    previous.close()
    return previous


def sink_dir():
    """The active sink directory, or ``None`` when tracing is off."""
    return _tracer.trace_dir


# --------------------------------------------------------------------------
# repro-trace CLI: reconstruct span trees from a sink directory.

def load_spans(trace_dir):
    """Every parseable span record under ``trace_dir`` (torn lines and
    foreign files are skipped, not fatal)."""
    spans = []
    try:
        names = sorted(os.listdir(trace_dir))
    except OSError as exc:
        raise SystemExit("repro-trace: cannot read %s: %s"
                         % (trace_dir, exc))
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(trace_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict) and "trace" in record \
                            and "span" in record:
                        spans.append(record)
        except OSError:
            continue
    return spans


class _Node:
    __slots__ = ("record", "children")

    def __init__(self, record):
        self.record = record
        self.children = []

    @property
    def name(self):
        return self.record.get("name", "?")

    @property
    def ts(self):
        return float(self.record.get("ts") or 0.0)

    @property
    def dur(self):
        return float(self.record.get("dur") or 0.0)

    @property
    def attrs(self):
        return self.record.get("attrs") or {}


def build_traces(spans):
    """Group spans by trace and wire parent/child links.

    Returns ``{trace_id: (roots, nodes)}`` where ``roots`` also holds
    **orphans** — spans whose parent record never made it to the sink
    (a killed process, an in-flight request).  Orphans are first-class
    so a partial trace still renders.
    """
    traces = {}
    for record in spans:
        traces.setdefault(record["trace"], []).append(record)
    built = {}
    for trace_id, records in traces.items():
        nodes = {}
        for record in records:
            # Duplicate span ids (a retried task) keep the first record.
            nodes.setdefault(record["span"], _Node(record))
        roots = []
        for node in nodes.values():
            parent = nodes.get(node.record.get("parent"))
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.ts, n.name))
        roots.sort(key=lambda n: (n.ts, n.name))
        built[trace_id] = (roots, nodes)
    return built


def _trace_window(nodes):
    t0 = min(node.ts for node in nodes.values())
    t1 = max(node.ts + node.dur for node in nodes.values())
    return t0, max(t1 - t0, 1e-9)


def _span_label(node):
    attrs = node.attrs
    bits = [node.name]
    if "source" in attrs:
        bits.append("[%s]" % attrs["source"])
    for key in ("point", "batch", "batches", "worker", "outcome", "lease"):
        if key in attrs:
            bits.append("%s=%s" % (key, attrs[key]))
    return " ".join(bits)


def _select_trace(built, prefix):
    """The trace matching ``prefix``, or the most recent one."""
    if prefix:
        matches = [tid for tid in built if tid.startswith(prefix)]
        if not matches:
            raise SystemExit("repro-trace: no trace matching %r" % prefix)
        if len(matches) > 1:
            raise SystemExit("repro-trace: ambiguous prefix %r (%s)"
                             % (prefix, ", ".join(sorted(matches)[:5])))
        return matches[0]
    return max(built, key=lambda tid: _trace_window(built[tid][1])[0])


def _cmd_ls(args, out):
    built = build_traces(load_spans(args.trace_dir))
    if not built:
        print("no traces under %s" % args.trace_dir, file=out)
        return 0
    print("%-18s %6s %9s %8s  %s"
          % ("TRACE", "SPANS", "START", "WALL", "ROOT"), file=out)
    ordered = sorted(built.items(), key=lambda kv: _trace_window(kv[1][1])[0])
    for trace_id, (roots, nodes) in ordered:
        t0, wall = _trace_window(nodes)
        start = time.strftime("%H:%M:%S", time.localtime(t0))
        root = _span_label(roots[0]) if roots else "?"
        print("%-18s %6d %9s %7.2fs  %s"
              % (trace_id[:16], len(nodes), start, wall, root), file=out)
    return 0


def _waterfall(node, t0, wall, depth, out, width=32):
    offset = max(0.0, node.ts - t0)
    left = int(round(width * offset / wall))
    bar = int(round(width * node.dur / wall))
    left = min(left, width - 1)
    bar = max(1, min(bar, width - left))
    lane = "." * left + "#" * bar + "." * (width - left - bar)
    label = "  " * depth + _span_label(node)
    print("%-46s |%s| %8.1fms @+%.3fs  (%s)"
          % (label[:46], lane, node.dur * 1e3, offset,
             node.record.get("proc", "?")), file=out)
    for child in node.children:
        _waterfall(child, t0, wall, depth + 1, out, width)


def _cmd_show(args, out):
    built = build_traces(load_spans(args.trace_dir))
    if not built:
        print("no traces under %s" % args.trace_dir, file=out)
        return 1
    trace_id = _select_trace(built, args.trace)
    roots, nodes = built[trace_id]
    t0, wall = _trace_window(nodes)
    print("trace %s: %d spans, %.3fs wall" % (trace_id, len(nodes), wall),
          file=out)
    for root in roots:
        _waterfall(root, t0, wall, 0, out)
    return 0


def _critical_path(root):
    """Chain from ``root`` through the child finishing last at each level."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda n: (n.ts + n.dur, n.dur))
        path.append(node)
    return path


def _summarize_trace(trace_id, roots, nodes, out):
    t0, wall = _trace_window(nodes)
    print("trace %s: %d spans, %.3fs wall" % (trace_id, len(nodes), wall),
          file=out)

    by_stage = {}
    for node in nodes.values():
        by_stage.setdefault(node.name, [0, 0.0])
        by_stage[node.name][0] += 1
        by_stage[node.name][1] += node.dur
    print("  by stage:", file=out)
    for name, (count, total) in sorted(by_stage.items(),
                                       key=lambda kv: -kv[1][1]):
        print("    %-16s %5dx %9.1fms" % (name, count, total * 1e3),
              file=out)

    by_source = {}
    for node in nodes.values():
        source = node.attrs.get("source")
        if source is not None:
            by_source.setdefault(source, [0, 0.0])
            by_source[source][0] += 1
            by_source[source][1] += node.dur
    if by_source:
        print("  batches by source:", file=out)
        for source, (count, total) in sorted(by_source.items()):
            print("    %-16s %5dx %9.1fms" % (source, count, total * 1e3),
                  file=out)

    # The request root (or the longest root when several requests share
    # the trace) anchors the critical path.
    anchor = max(roots, key=lambda n: n.dur, default=None)
    if anchor is not None:
        chain = _critical_path(anchor)
        rendered = " -> ".join("%s (%.1fms)" % (_span_label(n), n.dur * 1e3)
                               for n in chain)
        print("  critical path: %s" % rendered, file=out)


def _cmd_summarize(args, out):
    built = build_traces(load_spans(args.trace_dir))
    if not built:
        print("no traces under %s" % args.trace_dir, file=out)
        return 1
    if args.trace:
        selected = [_select_trace(built, args.trace)]
    else:
        selected = sorted(built,
                          key=lambda tid: _trace_window(built[tid][1])[0])
    for trace_id in selected:
        roots, nodes = built[trace_id]
        _summarize_trace(trace_id, roots, nodes, out)
    return 0


def main(argv=None, out=None):
    """Entry point for ``python -m repro.obs.trace``."""
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Reconstruct request waterfalls from a trace sink "
                    "directory written under --trace-dir.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_ls = sub.add_parser("ls", help="one line per trace in the sink")
    p_ls.add_argument("trace_dir")

    p_show = sub.add_parser("show", help="ASCII waterfall of one trace")
    p_show.add_argument("trace_dir")
    p_show.add_argument("trace", nargs="?", default=None,
                        help="trace id prefix (default: most recent)")

    p_sum = sub.add_parser("summarize",
                           help="stage/source attribution + critical path")
    p_sum.add_argument("trace_dir")
    p_sum.add_argument("trace", nargs="?", default=None,
                       help="trace id prefix (default: all traces)")

    args = parser.parse_args(argv)
    command = {"ls": _cmd_ls, "show": _cmd_show,
               "summarize": _cmd_summarize}[args.command]
    return command(args, out)


if __name__ == "__main__":
    sys.exit(main())
