"""Typed metrics: counters, gauges, fixed-bucket histograms, Prometheus text.

The service's ``GET /v1/metrics`` JSON ledger stays the scriptable
source of truth (its keys are append-only across PRs), but a JSON blob
cannot carry distributions — and stage latency *is* a distribution.
This module adds the typed layer underneath:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments,
  grouped into named **families** with optional labels, owned by a
  :class:`MetricsRegistry`.
* **Callback families** whose samples are computed at render time from
  a closure — how the broker exposes its lock-guarded ledger counters
  without double bookkeeping: the ints stay the single source of truth
  and the callback reads them under the broker lock during render.
* :func:`render_prometheus`: the text exposition format
  (``# HELP``/``# TYPE``, cumulative ``_bucket{le=...}`` + ``_sum`` +
  ``_count``), and :func:`parse_exposition`, a strict validator used by
  the test suite so the endpoint's output is checked against the
  format's grammar, not just eyeballed.

Everything is stdlib-only and thread-safe: direct instruments take a
per-registry lock on update; callback families synchronise however
their owner does (the broker renders under its own lock).
"""

import math
import re
import threading

__all__ = [
    "Counter", "Gauge", "Histogram", "Family", "MetricsRegistry",
    "GLOBAL", "DEFAULT_BUCKETS", "render_prometheus", "parse_exposition",
]

#: Latency buckets (seconds) sized for this service: sub-ms store hits
#: up to multi-second fused simulation rounds.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "value")

    kind = "counter"

    def __init__(self, lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def samples(self, name, labels):
        yield name, labels, self.value


class Gauge:
    """A value that can go either way (queue depth, heartbeat age)."""

    __slots__ = ("_lock", "value")

    kind = "gauge"

    def __init__(self, lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value):
        with self._lock:
            self.value = value

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def samples(self, name, labels):
        yield name, labels, self.value


class Histogram:
    """Fixed-bucket histogram (cumulative buckets rendered on export)."""

    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    kind = "histogram"

    def __init__(self, lock, buckets=DEFAULT_BUCKETS):
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        self.counts = [0] * (len(self.buckets) + 1)   # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def samples(self, name, labels):
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            yield (name + "_bucket", labels + (("le", _format(bound)),),
                   cumulative)
        yield name + "_bucket", labels + (("le", "+Inf"),), self.count
        yield name + "_sum", labels, self.total
        yield name + "_count", labels, self.count


class Family:
    """All instruments sharing one metric name, keyed by label values."""

    def __init__(self, registry, name, help_text, factory, labelnames):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._factory = factory
        self._children = {}
        self.kind = factory(threading.Lock()).kind

    def labels(self, **labelvalues):
        """The child instrument for these label values (created on
        first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError("expected labels %r, got %r"
                             % (self.labelnames, tuple(labelvalues)))
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._registry._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory(self._registry._lock)
                self._children[key] = child
        return child

    @property
    def unlabelled(self):
        """The single child of a label-less family."""
        if self.labelnames:
            raise ValueError("family %s has labels %r"
                             % (self.name, self.labelnames))
        return self.labels()

    def samples(self):
        for key, child in sorted(self._children.items()):
            labels = tuple(zip(self.labelnames, key))
            for sample in child.samples(self.name, labels):
                yield sample

    # Label-less convenience passthroughs.
    def inc(self, amount=1):
        self.unlabelled.inc(amount)

    def set(self, value):
        self.unlabelled.set(value)

    def observe(self, value):
        self.unlabelled.observe(value)


class _CallbackFamily:
    """Samples computed at render time from the owner's live state."""

    def __init__(self, name, help_text, kind, collect):
        if kind not in ("counter", "gauge"):
            raise ValueError("callback families are counter or gauge")
        self.name = name
        self.help = help_text
        self.kind = kind
        self._collect = collect

    def samples(self):
        for labels, value in self._collect():
            pairs = tuple(sorted(labels.items())) if labels else ()
            yield self.name, pairs, value


class MetricsRegistry:
    """Owns metric families; renders them in the Prometheus text format."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families = {}

    def _family(self, name, help_text, factory, labelnames):
        if not _NAME_RE.match(name):
            raise ValueError("bad metric name %r" % name)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError("bad label name %r" % label)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(self, name, help_text, factory, labelnames)
                self._families[name] = family
                return family
        # Idempotent re-registration (module reloads, repeated Service
        # construction against the GLOBAL registry) must agree on shape.
        if not isinstance(family, Family) or family.kind != \
                factory(threading.Lock()).kind \
                or family.labelnames != tuple(labelnames):
            raise ValueError("metric %s already registered with a "
                             "different shape" % name)
        return family

    def counter(self, name, help_text, labelnames=()):
        return self._family(name, help_text, Counter, labelnames)

    def gauge(self, name, help_text, labelnames=()):
        return self._family(name, help_text, Gauge, labelnames)

    def histogram(self, name, help_text, labelnames=(),
                  buckets=DEFAULT_BUCKETS):
        return self._family(name, help_text,
                            lambda lock: Histogram(lock, buckets),
                            labelnames)

    def callback(self, name, help_text, kind, collect):
        """Register a render-time family; ``collect()`` yields
        ``(labels_dict, value)`` pairs.  Re-registering ``name``
        replaces the callback (a restarted broker keeps the name)."""
        if not _NAME_RE.match(name):
            raise ValueError("bad metric name %r" % name)
        family = _CallbackFamily(name, help_text, kind, collect)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None and isinstance(existing, Family):
                raise ValueError("metric %s already registered as a "
                                 "direct family" % name)
            self._families[name] = family
        return family

    def render(self):
        """Prometheus text exposition for every family in this registry."""
        with self._lock:
            families = sorted(self._families.items())
        lines = []
        for name, family in families:
            lines.append("# HELP %s %s" % (name, _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (name, family.kind))
            for sample_name, labels, value in family.samples():
                lines.append("%s%s %s" % (sample_name,
                                          _render_labels(labels),
                                          _format(value)))
        return "\n".join(lines) + "\n" if lines else ""


#: Process-wide registry for components without a natural owner object
#: (store latency, lease acquisition) — rendered alongside the broker's.
GLOBAL = MetricsRegistry()


def render_prometheus(*registries):
    """Concatenate the exposition of several registries."""
    return "".join(registry.render() for registry in registries)


def _format(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return "%d" % value
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(value)


def _escape_help(text):
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text):
    return (str(text).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labels):
    if not labels:
        return ""
    inner = ",".join('%s="%s"' % (name, _escape_label_value(value))
                     for name, value in labels)
    return "{%s}" % inner


# --------------------------------------------------------------------------
# Validator: a strict reader of the text format, for tests.

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text):
    """Parse (and thereby validate) Prometheus text exposition.

    Returns ``{family_name: {"type", "help", "samples"}}`` where
    ``samples`` is a list of ``(sample_name, labels_dict, value)``.
    Raises :class:`ValueError` on any grammar violation, on samples
    without a preceding ``# TYPE``, and on histograms whose cumulative
    ``le`` buckets are non-monotonic or missing ``+Inf``.
    """
    families = {}
    current = None
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError("line %d: malformed HELP" % lineno)
            families.setdefault(parts[2], {"type": None, "help": None,
                                           "samples": []})
            families[parts[2]]["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError("line %d: malformed TYPE" % lineno)
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError("line %d: unknown type %r" % (lineno, kind))
            entry = families.setdefault(name, {"type": None, "help": None,
                                               "samples": []})
            if entry["type"] is not None:
                raise ValueError("line %d: duplicate TYPE for %s"
                                 % (lineno, name))
            entry["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError("line %d: malformed sample %r" % (lineno, line))
        sample_name = match.group("name")
        labels = {}
        label_text = match.group("labels")
        if label_text:
            pairs = list(_LABEL_PAIR_RE.finditer(label_text))
            rebuilt = ",".join(m.group(0) for m in pairs)
            if rebuilt != label_text.rstrip(","):
                raise ValueError("line %d: malformed labels %r"
                                 % (lineno, label_text))
            for pair in pairs:
                if pair.group(1) in labels:
                    raise ValueError("line %d: duplicate label %s"
                                     % (lineno, pair.group(1)))
                labels[pair.group(1)] = pair.group(2)
        value = _parse_value(match.group("value"))
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and \
                    sample_name[:-len(suffix)] in families:
                base = sample_name[:-len(suffix)]
                break
        if base not in families or families[base]["type"] is None:
            raise ValueError("line %d: sample %s without # TYPE"
                             % (lineno, sample_name))
        if current is not None and base != current and base in families \
                and families[base]["samples"]:
            raise ValueError("line %d: samples for %s are not contiguous"
                             % (lineno, base))
        current = base
        families[base]["samples"].append((sample_name, labels, value))

    for name, entry in families.items():
        # A family with no samples yet is legal (HELP/TYPE only): a
        # just-started service exposes its histogram families before
        # their first observation.
        if entry["type"] == "histogram" and entry["samples"]:
            _check_histogram(name, entry["samples"])
    return families


def _check_histogram(name, samples):
    series = {}
    sums = set()
    counts = {}
    for sample_name, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if sample_name == name + "_bucket":
            if "le" not in labels:
                raise ValueError("%s_bucket without le label" % name)
            series.setdefault(key, []).append(
                (_parse_value(labels["le"]), value))
        elif sample_name == name + "_sum":
            sums.add(key)
        elif sample_name == name + "_count":
            counts[key] = value
        else:
            raise ValueError("unexpected histogram sample %s" % sample_name)
    if not series:
        raise ValueError("histogram %s has no buckets" % name)
    for key, buckets in series.items():
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            raise ValueError("histogram %s buckets out of order" % name)
        if not math.isinf(bounds[-1]):
            raise ValueError("histogram %s missing +Inf bucket" % name)
        values = [v for _, v in buckets]
        if values != sorted(values):
            raise ValueError("histogram %s buckets not cumulative" % name)
        if key not in counts or key not in sums:
            raise ValueError("histogram %s missing _sum/_count" % name)
        if counts[key] != values[-1]:
            raise ValueError("histogram %s _count != +Inf bucket" % name)
