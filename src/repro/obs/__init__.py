"""Observability: tracing, metrics and kernel phase profiling.

Stdlib-only telemetry for the characterisation service, in three
pillars (see the module docstrings for the design contracts):

* :mod:`repro.obs.trace` — request/batch spans, the ``X-Repro-Trace``
  propagation contract, the JSONL sink and the ``repro-trace`` CLI.
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms with
  Prometheus text exposition (``GET /v1/metrics?format=prometheus``).
* :mod:`repro.obs.phases` — opt-in timing hooks inside the fused round
  and the BCJR kernel.

The one rule every pillar obeys: telemetry is **read-only**.  Result
rows are bit-for-bit identical with tracing on or off, and the
disabled path costs one attribute load per instrumentation site.
"""

import logging
import sys

from repro.obs.metrics import (GLOBAL, MetricsRegistry, parse_exposition,
                               render_prometheus)
from repro.obs.phases import get_phase_hook, set_phase_hook
from repro.obs.trace import (NULL_SPAN, NULL_TRACER, TRACE_HEADER, Span,
                             Tracer, configure, current_span, disable,
                             get_tracer, set_tracer)

__all__ = [
    "GLOBAL", "MetricsRegistry", "parse_exposition", "render_prometheus",
    "get_phase_hook", "set_phase_hook",
    "NULL_SPAN", "NULL_TRACER", "TRACE_HEADER", "Span", "Tracer",
    "configure", "current_span", "disable", "get_tracer", "set_tracer",
    "configure_logging",
]

_LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"


def configure_logging(level="warning", path=None):
    """Root logging config shared by the service and worker-agent mains.

    Every logger in this codebase is named ``repro.<module>`` (the
    stdlib ``logging.getLogger(__name__)`` idiom), so one root handler
    at ``level`` surfaces all of them consistently.  ``path`` appends
    to a file instead of stderr — stderr stays clean for daemons whose
    stdout announce line is parsed by supervisors.
    """
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ValueError("unknown log level %r" % level)
    handler = (logging.FileHandler(path, encoding="utf-8") if path
               else logging.StreamHandler(sys.stderr))
    handler.setFormatter(logging.Formatter(_LOG_FORMAT))
    root = logging.getLogger()
    root.setLevel(numeric)
    root.addHandler(handler)
    return handler
