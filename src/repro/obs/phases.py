"""Opt-in kernel phase hooks: near-zero-cost timing taps for hot loops.

The fused simulation round (:mod:`repro.analysis.fused`) and the BCJR
kernel (:mod:`repro.phy.bcjr`) are the hot paths the paper's figures are
about, so they cannot afford tracing machinery on every call.  Instead
they poll one module-level hook:

* ``hook = get_phase_hook()`` once per call, then ``if hook is not
  None`` around each timed section — a single global load and a branch
  when profiling is off, no allocation, no imports on the hot path.
* When tracing is enabled (:func:`repro.obs.trace.configure`) the hook
  records each phase as a completed child span of whatever span is
  current on the calling thread (the worker's ``simulate`` span), so
  transmit/channel/front-end/decode time lands inside the right batch
  in the waterfall.

Hook signature: ``hook(name, ts, dur, attrs)`` where ``name`` is the
phase label (``"transmit"``, ``"decode"``, ``"bcjr.forward"``, ...),
``ts`` the wall-clock start (``time.time()``), ``dur`` the elapsed
seconds (``time.perf_counter()`` delta) and ``attrs`` a small dict or
``None``.  Hooks must never raise and must never mutate their inputs —
phase timing is strictly read-only with respect to results.
"""

__all__ = ["get_phase_hook", "set_phase_hook"]

_hook = None


def get_phase_hook():
    """The installed phase hook, or ``None`` when profiling is off."""
    return _hook


def set_phase_hook(hook):
    """Install ``hook`` (or ``None`` to disable); returns the old hook."""
    global _hook
    previous = _hook
    _hook = hook
    return previous
