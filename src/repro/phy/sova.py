"""Soft-Output Viterbi Algorithm (SOVA) decoder.

The hardware architecture in the paper (Figure 3, after Berrou et al.) is a
Viterbi forward pass followed by two traceback units: the first finds good
starting states, the second performs two simultaneous tracebacks (best and
second-best path) and updates a per-bit *soft decision* whenever the two
paths disagree and the path-metric difference is smaller than the current
soft decision.  Functionally this is Hagenauer's reliability-update rule,
which is what this module implements:

1. Forward ACS over the whole packet, recording for every (time, state) the
   survivor edge and the winner-minus-loser metric margin ``delta``.
2. Traceback of the maximum-likelihood path (the packet is terminated, so
   the end state is known).
3. For every merge point ``t`` on the ML path, re-trace the competing path
   for ``traceback_length`` steps; wherever its decision differs from the
   ML decision at time ``j``, the reliability of bit ``j`` is lowered to
   ``min(L_j, delta_t)``.

The decoder operates on a batch of packets at once: the forward pass is
vectorised over (batch, states) and the reliability update over the batch,
which is how the pure-Python reproduction claws back enough speed to run the
paper's BER-characterisation experiments.
"""

import numpy as np

from repro.phy.decoder_base import ConvolutionalDecoder, DecodeResult
from repro.phy.trellis import BranchMetricUnit, PathMetricUnit, Trellis, reshape_soft_input

#: Reliability assigned to bits never contradicted by a competing path.  The
#: hardware uses the largest representable soft decision; any value larger
#: than realistic metric margins works here.
MAX_RELIABILITY = 1.0e6


class SovaDecoder(ConvolutionalDecoder):
    """Soft-output Viterbi decoder with Hagenauer's reliability update.

    Parameters
    ----------
    trellis:
        Shared trellis; the 802.11 mother code by default.
    traceback_length:
        Length of the reliability-update window (the paper's second
        traceback unit length ``k``; 64 in the evaluated configuration).
    first_traceback_length:
        Length of the first traceback unit (``l`` in the latency formula
        ``l + k + 12``).  It does not change the functional output of a
        full-packet software decode but is carried for the latency and area
        models.
    """

    name = "sova"
    produces_soft_output = True

    def __init__(self, trellis=None, traceback_length=64, first_traceback_length=None):
        self.trellis = trellis if trellis is not None else Trellis()
        self.traceback_length = int(traceback_length)
        self.first_traceback_length = (
            int(first_traceback_length)
            if first_traceback_length is not None
            else int(traceback_length)
        )
        self.bmu = BranchMetricUnit(self.trellis)
        self.pmu = PathMetricUnit(self.trellis)

    def decode(self, soft, num_data_bits):
        soft = reshape_soft_input(soft, self.trellis.n_out)
        batch, steps, _ = soft.shape
        self._check_length(steps, num_data_bits, self.trellis.code.memory)
        trellis = self.trellis
        rows = np.arange(batch)

        # ------------------------------------------------------------------
        # Forward pass: survivors and ACS margins.
        # ------------------------------------------------------------------
        metrics = self.pmu.initial_metrics(batch, known_start=True)
        survivor_state = np.empty((steps, batch, trellis.num_states), dtype=np.int8)
        survivor_input = np.empty((steps, batch, trellis.num_states), dtype=np.int8)
        margins = np.empty((steps, batch, trellis.num_states), dtype=np.float32)

        for t in range(steps):
            branch = self.bmu.compute(soft[:, t, :])
            metrics, prev_state, prev_input, delta = self.pmu.forward_step(
                metrics, branch
            )
            metrics = self.pmu.normalize(metrics)
            survivor_state[t] = prev_state
            survivor_input[t] = prev_input
            margins[t] = delta

        # ------------------------------------------------------------------
        # Traceback of the maximum-likelihood path (terminated packet).
        # ------------------------------------------------------------------
        ml_state_after = np.empty((batch, steps), dtype=np.int64)
        ml_decision = np.empty((batch, steps), dtype=np.uint8)
        state = np.zeros(batch, dtype=np.int64)
        for t in range(steps - 1, -1, -1):
            ml_state_after[:, t] = state
            ml_decision[:, t] = survivor_input[t, rows, state]
            state = survivor_state[t, rows, state].astype(np.int64)

        # ------------------------------------------------------------------
        # Reliability update (Hagenauer rule) over a sliding window.
        # ------------------------------------------------------------------
        reliability = np.full((batch, steps), MAX_RELIABILITY, dtype=np.float64)
        window = self.traceback_length
        for t in range(steps):
            merge_state = ml_state_after[:, t]
            delta_t = margins[t, rows, merge_state].astype(np.float64)

            # Identify the losing edge into the merge state: the predecessor
            # that is *not* the survivor, and the input bit labelling it.
            survivor_prev = survivor_state[t, rows, merge_state].astype(np.int64)
            pred0 = trellis.prev_state[merge_state, 0]
            loser_slot = (survivor_prev == pred0).astype(np.int64)
            competing_state = trellis.prev_state[merge_state, loser_slot]
            competing_decision = trellis.prev_input[merge_state, loser_slot]

            # The competing path disagrees at the merge step whenever its
            # edge label differs from the ML decision.
            differs = competing_decision != ml_decision[:, t]
            update = differs & (delta_t < reliability[:, t])
            reliability[update, t] = delta_t[update]

            # Walk both paths backwards through the update window.
            state_c = competing_state
            limit = min(window, t)
            for k in range(1, limit + 1):
                j = t - k
                decision_c = survivor_input[j, rows, state_c]
                differs = decision_c != ml_decision[:, j]
                update = differs & (delta_t < reliability[:, j])
                reliability[update, j] = delta_t[update]
                state_c = survivor_state[j, rows, state_c].astype(np.int64)

        signs = ml_decision.astype(np.float64) * 2.0 - 1.0
        llr = signs * reliability
        return DecodeResult(
            bits=ml_decision[:, :num_data_bits], llr=llr[:, :num_data_bits]
        )
