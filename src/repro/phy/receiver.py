"""The 802.11a/g receive pipeline.

The receiver mirrors the transmit chain of Figure 1: OFDM demodulation, soft
demapping, deinterleaving, depuncturing, soft-decision decoding and
descrambling.  The decoder is pluggable -- hard Viterbi, SOVA or SW-BCJR --
which is the axis the paper's case study explores.

Two call styles are offered:

* :meth:`Receiver.receive` processes one packet end to end.
* :meth:`Receiver.front_end_batch` plus :meth:`Receiver.decode_batch`
  process a whole batch of packets: every front-end stage and the trellis
  decode are vectorised across the batch, which is how the BER experiments
  push millions of bits through the pure-Python decoders in reasonable
  time.  :meth:`Receiver.front_end` is the batch-of-one wrapper, so the two
  paths are bit-exact by construction.

Batched front-end shapes (P packets, S OFDM symbols per packet)::

    samples          (P, S * 80)        complex time-domain input
    symbols          (P, S * 48)        one stacked FFT + per-packet equalise
    soft values      (P, S * N_CBPS)    vectorised Tosato/Bisaglia demap
    deinterleaved    (P, S * N_CBPS)    per-symbol permutation
    depunctured      (P, 2 * (bits+6))  one scatter with erasures
    decoded bits     (P, bits)          batched trellis decode + one
                                        keystream XOR to descramble
"""

import numpy as np

from repro.phy.bcjr import BcjrDecoder
from repro.phy.convolutional import IEEE80211_CODE, depuncture
from repro.phy.decoder_base import ConvolutionalDecoder
from repro.phy.demapper import Demapper
from repro.phy.dtype import dtype_policy
from repro.phy.interleaver import Interleaver
from repro.phy.ofdm import OfdmDemodulator
from repro.phy.scrambler import descramble
from repro.phy.sova import SovaDecoder
from repro.phy.transmitter import FrameGeometry
from repro.phy.viterbi import ViterbiDecoder

#: Decoder classes known to the receiver, keyed by their registry name.
DECODER_CLASSES = {
    ViterbiDecoder.name: ViterbiDecoder,
    SovaDecoder.name: SovaDecoder,
    BcjrDecoder.name: BcjrDecoder,
}


class ReceiveResult:
    """Output of the receive chain for one packet (or a batch).

    Attributes
    ----------
    bits:
        Decoded, descrambled payload bits; shape ``(num_data_bits,)`` for a
        single packet or ``(batch, num_data_bits)``.
    llr:
        Per-bit signed LLRs from the decoder (``None`` for hard Viterbi).
        The sign refers to the *scrambled* bit value; the magnitude -- the
        SoftPHY hint -- is unaffected by descrambling.
    """

    def __init__(self, bits, llr=None):
        self.bits = bits
        self.llr = llr

    @property
    def hints(self):
        """Unsigned SoftPHY hints (LLR magnitudes), or ``None``."""
        if self.llr is None:
            return None
        return np.abs(self.llr)

    def __repr__(self):
        return "ReceiveResult(bits=%s, soft=%s)" % (
            getattr(self.bits, "shape", None),
            self.llr is not None,
        )


def make_decoder(decoder, dtype=None, **kwargs):
    """Build a decoder from a name, class or ready instance.

    ``dtype`` (a :mod:`repro.phy.dtype` policy) is forwarded only to
    decoder classes advertising ``supports_dtype``; the others always
    compute in float64 and simply up-cast reduced-precision soft inputs.
    A ready instance is returned unchanged.
    """
    if isinstance(decoder, ConvolutionalDecoder):
        return decoder
    if isinstance(decoder, type) and issubclass(decoder, ConvolutionalDecoder):
        cls = decoder
    else:
        try:
            cls = DECODER_CLASSES[decoder]
        except (KeyError, TypeError):
            raise ValueError(
                "unknown decoder %r (expected one of %s, a decoder class or "
                "an instance)" % (decoder, ", ".join(sorted(DECODER_CLASSES)))
            ) from None
    if dtype is not None and getattr(cls, "supports_dtype", False):
        kwargs.setdefault("dtype", dtype)
    return cls(**kwargs)


class Receiver:
    """Full 802.11a/g receive chain for one PHY rate.

    Parameters
    ----------
    phy_rate:
        The :class:`~repro.phy.params.PhyRate` the transmitter used.
    decoder:
        Decoder name (``"viterbi"``, ``"sova"``, ``"bcjr"``), class or
        instance.
    scrambler_seed:
        Must match the transmitter's seed.
    demapper_scaled:
        Forwarded to :class:`~repro.phy.demapper.Demapper`: ``False`` is the
        paper's hardware demapper (no SNR/modulation scaling).
    snr_db:
        SNR assumed by a scaled demapper.
    llr_format:
        Optional fixed-point format applied to the demapper output,
        modelling the narrow hardware datapath.
    dtype:
        Working-precision policy (see :mod:`repro.phy.dtype`), threaded
        through the demodulator, demapper, depuncturer and (for decoders
        that support it) the trellis decode — every coercion the chain
        performs uses the policy's dtypes, so a float32 chain never
        silently up-casts mid-stream.  Default: the exact float64 path.
    """

    def __init__(
        self,
        phy_rate,
        decoder="viterbi",
        scrambler_seed=0x7F,
        demapper_scaled=False,
        snr_db=None,
        llr_format=None,
        code=IEEE80211_CODE,
        dtype=None,
    ):
        self.phy_rate = phy_rate
        self.scrambler_seed = scrambler_seed
        self.code = code
        self.dtype_policy = dtype_policy(dtype)
        self.decoder = make_decoder(decoder, dtype=self.dtype_policy)
        self.demapper = Demapper(
            phy_rate.modulation,
            snr_db=snr_db,
            scaled=demapper_scaled,
            output_format=llr_format,
            dtype=self.dtype_policy,
        )
        self.interleaver = Interleaver(phy_rate)
        self.demodulator = OfdmDemodulator(dtype=self.dtype_policy)

    def geometry(self, num_data_bits):
        """Frame geometry (must match the transmitter's)."""
        return FrameGeometry(self.phy_rate, num_data_bits, code=self.code)

    # ------------------------------------------------------------------ #
    # Front end: everything before the trellis decoder
    # ------------------------------------------------------------------ #
    def front_end(self, samples, num_data_bits, channel_gain=None, csi_weights=None):
        """Demodulate, demap, deinterleave and depuncture one packet.

        Thin batch-of-one wrapper around :meth:`front_end_batch`, so the
        two paths are bit-exact by construction.

        Parameters
        ----------
        samples:
            Received complex baseband samples for the frame.
        num_data_bits:
            Payload size the transmitter used (known to the receiver via
            the PLCP header, which is not modelled).
        channel_gain:
            Optional (scalar) flat-fading gain for ideal equalisation.
        csi_weights:
            Optional per-OFDM-symbol weights applied to the soft values
            (channel-state information).

        Returns
        -------
        numpy.ndarray
            Depunctured soft values ready for a trellis decoder, length
            ``2 * (num_data_bits + memory)``.
        """
        samples = np.asarray(samples, dtype=self.dtype_policy.complex_dtype)
        gains = None if channel_gain is None else np.array([complex(channel_gain)])
        csi = None
        if csi_weights is not None:
            csi = np.asarray(
                csi_weights, dtype=self.dtype_policy.float_dtype
            )[np.newaxis, :]
        return self.front_end_batch(
            samples[np.newaxis, :], num_data_bits, channel_gains=gains, csi_weights=csi
        )[0]

    def front_end_batch(
        self, samples, num_data_bits, channel_gains=None, csi_weights=None,
        llr_scale=None,
    ):
        """Batched front end: ``(packets, samples)`` in, soft values out.

        Every stage operates on the whole batch at once (see the module
        docstring for the per-stage shapes); there is no per-packet Python
        iteration.

        Parameters
        ----------
        samples:
            ``(packets, num_samples)`` received complex baseband samples,
            or a 3-D ``(points, packets, num_samples)`` stack of operating
            points sharing this receiver's rate: each stage is
            row-independent, so the stack flows through as one fused
            ``(points * packets)`` batch (bit-for-bit what per-point calls
            produce) and the result keeps the stacked leading axes.
        num_data_bits:
            Payload size the transmitter used (shared by every packet).
        channel_gains:
            Optional ``(packets,)`` complex flat-fading gains for ideal
            per-packet equalisation (leading axes match ``samples``).
        csi_weights:
            Optional ``(packets, num_symbols)`` per-OFDM-symbol weights
            applied to the soft values (channel-state information).
        llr_scale:
            Optional per-packet ``Es/N0 * S_modulation`` factors (shape
            ``(packets,)``) forwarded to the demapper — how a fused stack
            applies a *different* scaled-demapper SNR per operating point.

        Returns
        -------
        numpy.ndarray
            ``(packets, 2 * (num_data_bits + memory))`` depunctured soft
            values ready for a batched trellis decode.
        """
        samples = np.asarray(samples, dtype=self.dtype_policy.complex_dtype)
        if samples.ndim == 3:
            stack = samples.shape[:2]
            flat = lambda arr: (None if arr is None else
                                np.asarray(arr).reshape((-1,) + np.asarray(arr).shape[2:]))
            out = self.front_end_batch(
                samples.reshape(-1, samples.shape[-1]), num_data_bits,
                channel_gains=flat(channel_gains),
                csi_weights=flat(csi_weights),
                llr_scale=flat(llr_scale),
            )
            return out.reshape(stack + (-1,))
        if samples.ndim != 2:
            raise ValueError("front_end_batch expects a (packets, samples) array")
        geometry = self.geometry(num_data_bits)
        symbols = self.demodulator.demodulate_batch(
            samples, channel_gains=channel_gains
        )
        weights = None
        if csi_weights is not None:
            weights = np.repeat(
                np.asarray(csi_weights, dtype=self.dtype_policy.float_dtype),
                48, axis=-1
            )[..., : symbols.shape[1]]
        soft = self.demapper.demap(symbols, weights=weights,
                                   llr_scale=llr_scale)
        deinterleaved = self.interleaver.deinterleave(soft)
        transmitted = deinterleaved[:, : geometry.coded_bits]
        return depuncture(
            transmitted, self.phy_rate.code_rate, geometry.unpunctured_bits,
            dtype=self.dtype_policy.float_dtype,
        )

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode_batch(self, soft_batch, num_data_bits):
        """Decode a ``(batch, length)`` array of depunctured soft values.

        A 3-D ``(points, packets, length)`` stack decodes as one fused
        batch (any decoder; the recursions are row-independent) and the
        result keeps the stacked leading axes.
        """
        soft_batch = np.asarray(soft_batch)
        stack = None
        if soft_batch.ndim == 3:
            stack = soft_batch.shape[:2]
            soft_batch = soft_batch.reshape(-1, soft_batch.shape[-1])
        result = self.decoder.decode(soft_batch, num_data_bits)
        # Every packet shares the scrambler seed, so the whole batch is
        # descrambled with one keystream XOR.
        descrambled = descramble(result.bits, seed=self.scrambler_seed)
        llr = result.llr
        if stack is not None:
            descrambled = descrambled.reshape(stack + (-1,))
            llr = None if llr is None else llr.reshape(stack + (-1,))
        return ReceiveResult(bits=descrambled, llr=llr)

    def receive(self, samples, num_data_bits, channel_gain=None, csi_weights=None):
        """Process one packet end to end."""
        soft = self.front_end(
            samples,
            num_data_bits,
            channel_gain=channel_gain,
            csi_weights=csi_weights,
        )
        batch = self.decode_batch(soft[np.newaxis, :], num_data_bits)
        llr = None if batch.llr is None else batch.llr[0]
        return ReceiveResult(bits=batch.bits[0], llr=llr)

    def __repr__(self):
        return "Receiver(rate=%s, decoder=%s)" % (
            self.phy_rate.name,
            self.decoder.name,
        )


def receive(samples, phy_rate, num_data_bits, decoder="viterbi", **kwargs):
    """Convenience wrapper: receive one packet."""
    receiver = Receiver(phy_rate, decoder=decoder, **kwargs)
    return receiver.receive(samples, num_data_bits)
