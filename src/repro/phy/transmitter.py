"""The 802.11a/g transmit pipeline.

The transmitter chains the blocks on the left-hand side of the paper's
Figure 1: scrambler, convolutional encoder (with termination tail),
puncturer, pad-to-symbol, interleaver, constellation mapper and OFDM
modulator.  The :class:`Transmitter` object applies the whole chain to one
packet; :class:`FrameGeometry` records every intermediate length so the
receiver (and the tests) can reconstruct exactly which transmitted positions
carry payload, tail and padding.
"""

import numpy as np

from repro.phy.convolutional import IEEE80211_CODE, punctured_length, puncture
from repro.phy.interleaver import Interleaver
from repro.phy.mapper import Mapper
from repro.phy.ofdm import OfdmModulator
from repro.phy.scrambler import scramble


class FrameGeometry:
    """Derived lengths for a packet of ``num_data_bits`` at a given rate.

    Attributes
    ----------
    num_data_bits:
        Payload bits in the packet.
    num_trellis_steps:
        Payload plus the encoder's termination tail.
    coded_bits:
        Punctured coded bits actually transmitted (before padding).
    padded_bits:
        Coded bits after padding up to a whole number of OFDM symbols.
    num_symbols:
        OFDM symbols in the frame.
    num_samples:
        Complex time-domain samples (including cyclic prefixes).
    """

    def __init__(self, phy_rate, num_data_bits, code=IEEE80211_CODE, cyclic_prefix=16):
        if num_data_bits < 1:
            raise ValueError("a packet needs at least one data bit")
        self.phy_rate = phy_rate
        self.num_data_bits = int(num_data_bits)
        self.num_trellis_steps = self.num_data_bits + code.memory
        self.coded_bits = punctured_length(self.num_trellis_steps, phy_rate.code_rate)
        ncbps = phy_rate.coded_bits_per_symbol
        self.num_symbols = int(np.ceil(self.coded_bits / ncbps))
        self.padded_bits = self.num_symbols * ncbps
        self.pad_bits = self.padded_bits - self.coded_bits
        self.num_samples = self.num_symbols * (64 + cyclic_prefix)
        self.unpunctured_bits = self.num_trellis_steps * code.outputs_per_input

    @property
    def duration_us(self):
        """On-air duration of the frame at 4 us per OFDM symbol."""
        return self.num_symbols * 4.0

    def __repr__(self):
        return "FrameGeometry(rate=%s, data=%d, symbols=%d)" % (
            self.phy_rate.name,
            self.num_data_bits,
            self.num_symbols,
        )


class Transmitter:
    """Full 802.11a/g transmit chain for one PHY rate.

    Parameters
    ----------
    phy_rate:
        The :class:`~repro.phy.params.PhyRate` to transmit at.
    scrambler_seed:
        Non-zero 7-bit scrambler seed shared with the receiver.
    code:
        Convolutional mother code (the 802.11 K=7 code by default).
    """

    def __init__(self, phy_rate, scrambler_seed=0x7F, code=IEEE80211_CODE):
        self.phy_rate = phy_rate
        self.scrambler_seed = scrambler_seed
        self.code = code
        self.interleaver = Interleaver(phy_rate)
        self.mapper = Mapper(phy_rate.modulation)
        self.modulator = OfdmModulator()

    def geometry(self, num_data_bits):
        """Frame geometry for a packet of ``num_data_bits``."""
        return FrameGeometry(self.phy_rate, num_data_bits, code=self.code)

    # ------------------------------------------------------------------ #
    # Individual stages (exposed for the LI pipeline wrappers and tests)
    # ------------------------------------------------------------------ #
    def scramble(self, bits):
        """Scramble the payload bits."""
        return scramble(np.asarray(bits, dtype=np.uint8), seed=self.scrambler_seed)

    def encode(self, scrambled_bits):
        """Convolutionally encode (terminated) and puncture."""
        coded = self.code.encode(scrambled_bits, terminate=True)
        return puncture(coded, self.phy_rate.code_rate)

    def pad(self, coded_bits):
        """Zero-pad the coded stream to a whole number of OFDM symbols."""
        ncbps = self.phy_rate.coded_bits_per_symbol
        remainder = coded_bits.size % ncbps
        if remainder == 0:
            return np.asarray(coded_bits, dtype=np.uint8)
        pad = np.zeros(ncbps - remainder, dtype=np.uint8)
        return np.concatenate([np.asarray(coded_bits, dtype=np.uint8), pad])

    def map_symbols(self, interleaved_bits):
        """Map interleaved coded bits onto constellation symbols."""
        return self.mapper.map(interleaved_bits)

    # ------------------------------------------------------------------ #
    # Whole-packet transmit
    # ------------------------------------------------------------------ #
    def transmit(self, bits):
        """Run the whole transmit chain on a payload bit array.

        Returns the complex baseband samples of the frame.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        scrambled = self.scramble(bits)
        coded = self.encode(scrambled)
        padded = self.pad(coded)
        interleaved = self.interleaver.interleave(padded)
        symbols = self.map_symbols(interleaved)
        return self.modulator.modulate(symbols)

    def __repr__(self):
        return "Transmitter(rate=%s)" % self.phy_rate.name


def transmit(bits, phy_rate, scrambler_seed=0x7F):
    """Convenience wrapper: transmit ``bits`` at ``phy_rate``."""
    return Transmitter(phy_rate, scrambler_seed=scrambler_seed).transmit(bits)
