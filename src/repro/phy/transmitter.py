"""The 802.11a/g transmit pipeline.

The transmitter chains the blocks on the left-hand side of the paper's
Figure 1: scrambler, convolutional encoder (with termination tail),
puncturer, pad-to-symbol, interleaver, constellation mapper and OFDM
modulator.  The :class:`Transmitter` object applies the whole chain to one
packet; :class:`FrameGeometry` records every intermediate length so the
receiver (and the tests) can reconstruct exactly which transmitted positions
carry payload, tail and padding.

Batching
--------
:meth:`Transmitter.transmit_batch` is the batch-native entry point: a whole
``(packets, num_data_bits)`` bit matrix flows through the chain as 2-D
arrays with no per-packet Python iteration.  The per-stage shapes are::

    payload bits      (packets, num_data_bits)        uint8
    scrambled bits    (packets, num_data_bits)        XOR with cached keystream
    coded bits        (packets, coded_bits)           batched shift-register XOR
                                                      + one puncture gather
    padded bits       (packets, padded_bits)
    interleaved bits  (packets, padded_bits)          per-symbol permutation
    symbols           (packets, padded_bits / bps)    constellation lookup table
    samples           (packets, num_samples)          one stacked IFFT

:meth:`Transmitter.transmit` is a thin batch-of-one wrapper, so the two
paths are bit-exact by construction.  The per-stage methods
(:meth:`~Transmitter.scramble`, :meth:`~Transmitter.encode`, ...) remain the
single-packet building blocks used by the latency-insensitive pipelines.
"""

import numpy as np

from repro.phy.convolutional import IEEE80211_CODE, punctured_length, puncture
from repro.phy.interleaver import Interleaver
from repro.phy.mapper import Mapper
from repro.phy.ofdm import OfdmModulator
from repro.phy.scrambler import scramble


class FrameGeometry:
    """Derived lengths for a packet of ``num_data_bits`` at a given rate.

    Attributes
    ----------
    num_data_bits:
        Payload bits in the packet.
    num_trellis_steps:
        Payload plus the encoder's termination tail.
    coded_bits:
        Punctured coded bits actually transmitted (before padding).
    padded_bits:
        Coded bits after padding up to a whole number of OFDM symbols.
    num_symbols:
        OFDM symbols in the frame.
    num_samples:
        Complex time-domain samples (including cyclic prefixes).
    """

    def __init__(self, phy_rate, num_data_bits, code=IEEE80211_CODE, cyclic_prefix=16):
        if num_data_bits < 1:
            raise ValueError("a packet needs at least one data bit")
        self.phy_rate = phy_rate
        self.num_data_bits = int(num_data_bits)
        self.num_trellis_steps = self.num_data_bits + code.memory
        self.coded_bits = punctured_length(self.num_trellis_steps, phy_rate.code_rate)
        ncbps = phy_rate.coded_bits_per_symbol
        self.num_symbols = int(np.ceil(self.coded_bits / ncbps))
        self.padded_bits = self.num_symbols * ncbps
        self.pad_bits = self.padded_bits - self.coded_bits
        self.num_samples = self.num_symbols * (64 + cyclic_prefix)
        self.unpunctured_bits = self.num_trellis_steps * code.outputs_per_input

    @property
    def duration_us(self):
        """On-air duration of the frame at 4 us per OFDM symbol."""
        return self.num_symbols * 4.0

    def __repr__(self):
        return "FrameGeometry(rate=%s, data=%d, symbols=%d)" % (
            self.phy_rate.name,
            self.num_data_bits,
            self.num_symbols,
        )


class Transmitter:
    """Full 802.11a/g transmit chain for one PHY rate.

    Parameters
    ----------
    phy_rate:
        The :class:`~repro.phy.params.PhyRate` to transmit at.
    scrambler_seed:
        Non-zero 7-bit scrambler seed shared with the receiver.
    code:
        Convolutional mother code (the 802.11 K=7 code by default).
    dtype:
        Working-precision policy for the mapper and OFDM modulator (see
        :mod:`repro.phy.dtype`).  The bit-domain stages are dtype-free;
        the float64 default is bit-for-bit the historical chain.
    """

    def __init__(self, phy_rate, scrambler_seed=0x7F, code=IEEE80211_CODE,
                 dtype=None):
        self.phy_rate = phy_rate
        self.scrambler_seed = scrambler_seed
        self.code = code
        self.interleaver = Interleaver(phy_rate)
        self.mapper = Mapper(phy_rate.modulation, dtype=dtype)
        self.modulator = OfdmModulator(dtype=dtype)

    def geometry(self, num_data_bits):
        """Frame geometry for a packet of ``num_data_bits``."""
        return FrameGeometry(self.phy_rate, num_data_bits, code=self.code)

    # ------------------------------------------------------------------ #
    # Individual stages (exposed for the LI pipeline wrappers and tests)
    # ------------------------------------------------------------------ #
    def scramble(self, bits):
        """Scramble the payload bits."""
        return scramble(np.asarray(bits, dtype=np.uint8), seed=self.scrambler_seed)

    def encode(self, scrambled_bits):
        """Convolutionally encode (terminated) and puncture."""
        coded = self.code.encode(scrambled_bits, terminate=True)
        return puncture(coded, self.phy_rate.code_rate)

    def pad(self, coded_bits):
        """Zero-pad the coded stream to a whole number of OFDM symbols."""
        ncbps = self.phy_rate.coded_bits_per_symbol
        remainder = coded_bits.size % ncbps
        if remainder == 0:
            return np.asarray(coded_bits, dtype=np.uint8)
        pad = np.zeros(ncbps - remainder, dtype=np.uint8)
        return np.concatenate([np.asarray(coded_bits, dtype=np.uint8), pad])

    def map_symbols(self, interleaved_bits):
        """Map interleaved coded bits onto constellation symbols."""
        return self.mapper.map(interleaved_bits)

    # ------------------------------------------------------------------ #
    # Whole-packet transmit
    # ------------------------------------------------------------------ #
    def transmit_batch(self, bits):
        """Run the transmit chain on a ``(packets, num_data_bits)`` bit matrix.

        Every stage operates on the whole 2-D array at once (see the module
        docstring for the per-stage shapes); there is no per-packet Python
        iteration.  Returns the complex baseband samples as a
        ``(packets, num_samples)`` array.

        A 3-D ``(points, packets, num_data_bits)`` stack of operating
        points is transmitted as one fused ``(points * packets)`` batch —
        every stage is row-independent, so the result (reshaped back to
        ``(points, packets, num_samples)``) is bit-for-bit what per-point
        calls would produce.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim == 3:
            stacked = self.transmit_batch(bits.reshape(-1, bits.shape[-1]))
            return stacked.reshape(bits.shape[:2] + (-1,))
        if bits.ndim != 2:
            raise ValueError("transmit_batch expects a (packets, bits) array")
        scrambled = self.scramble(bits)
        coded = self.code.encode(scrambled, terminate=True)
        punctured = puncture(coded, self.phy_rate.code_rate)
        ncbps = self.phy_rate.coded_bits_per_symbol
        remainder = punctured.shape[1] % ncbps
        if remainder:
            pad = np.zeros((punctured.shape[0], ncbps - remainder), dtype=np.uint8)
            punctured = np.concatenate([punctured, pad], axis=1)
        interleaved = self.interleaver.interleave(punctured)
        symbols = self.mapper.map_batch(interleaved)
        return self.modulator.modulate_batch(symbols)

    def transmit(self, bits):
        """Run the whole transmit chain on a payload bit array.

        Thin wrapper around :meth:`transmit_batch` with a batch of one;
        returns the complex baseband samples of the frame.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        return self.transmit_batch(bits[np.newaxis, :])[0]

    def __repr__(self):
        return "Transmitter(rate=%s)" % self.phy_rate.name


def transmit(bits, phy_rate, scrambler_seed=0x7F):
    """Convenience wrapper: transmit ``bits`` at ``phy_rate``."""
    return Transmitter(phy_rate, scrambler_seed=scrambler_seed).transmit(bits)
