"""802.11a/g block interleaver.

The interleaver shuffles the coded bits of each OFDM symbol so that adjacent
coded bits are mapped onto non-adjacent subcarriers and alternately onto
less- and more-significant constellation bits, which breaks up the bursty
errors the paper lists among the channel impairments a protocol must absorb.

The standard defines two permutations over the ``N_CBPS`` coded bits of one
OFDM symbol (``N_BPSC`` = bits per subcarrier, ``s = max(N_BPSC / 2, 1)``)::

    i = (N_CBPS / 16) * (k mod 16) + floor(k / 16)
    j = s * floor(i / s) + (i + N_CBPS - floor(16 * i / N_CBPS)) mod s

Bit ``k`` of the input is transmitted in position ``j``.
"""

import numpy as np


def interleaver_permutation(coded_bits_per_symbol, bits_per_subcarrier):
    """Return the permutation ``perm`` with ``out[perm[k]] = in[k]``.

    Parameters
    ----------
    coded_bits_per_symbol:
        ``N_CBPS`` -- coded bits carried by one OFDM symbol.
    bits_per_subcarrier:
        ``N_BPSC`` -- bits per constellation point (1, 2, 4 or 6).
    """
    ncbps = int(coded_bits_per_symbol)
    nbpsc = int(bits_per_subcarrier)
    if ncbps % 16:
        raise ValueError("N_CBPS must be a multiple of 16, got %d" % ncbps)
    s = max(nbpsc // 2, 1)
    k = np.arange(ncbps)
    i = (ncbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + ncbps - (16 * i) // ncbps) % s
    return j


class Interleaver:
    """Per-OFDM-symbol interleaver / deinterleaver for one PHY rate.

    Parameters
    ----------
    phy_rate:
        The :class:`~repro.phy.params.PhyRate` whose symbol geometry to use.
    """

    def __init__(self, phy_rate):
        self.phy_rate = phy_rate
        self.block_size = phy_rate.coded_bits_per_symbol
        self.permutation = interleaver_permutation(
            phy_rate.coded_bits_per_symbol, phy_rate.modulation.bits_per_symbol
        )
        self.inverse = np.argsort(self.permutation)

    def _check(self, values):
        values = np.asarray(values)
        # Per-packet length must divide into whole OFDM symbols: checking
        # the last axis (not the total size) keeps a batched (packets,
        # bits) input from silently mixing bits across rows.
        if values.shape[-1] % self.block_size:
            raise ValueError(
                "interleaver input length %d is not a multiple of the symbol "
                "size %d" % (values.shape[-1], self.block_size)
            )
        return values

    def interleave(self, bits):
        """Interleave a coded-bit stream (a whole number of OFDM symbols).

        Accepts a 1-D stream or a 2-D ``(packets, padded_bits)`` batch: the
        permutation is applied per OFDM symbol, so rows (packets) never mix
        and the batched result is bit-exact with per-packet calls.
        """
        bits = self._check(bits)
        blocks = bits.reshape(-1, self.block_size)
        out = np.empty_like(blocks)
        out[:, self.permutation] = blocks
        return out.reshape(bits.shape)

    def deinterleave(self, values):
        """Invert :meth:`interleave`; works on bits or soft values.

        Like :meth:`interleave`, 2-D ``(packets, padded_bits)`` input is
        deinterleaved row-wise in one vectorised pass.
        """
        values = self._check(values)
        blocks = values.reshape(-1, self.block_size)
        out = np.empty_like(blocks)
        out[:, self.inverse] = blocks
        return out.reshape(values.shape)

    def __repr__(self):
        return "Interleaver(rate=%s, block=%d)" % (self.phy_rate.name, self.block_size)
