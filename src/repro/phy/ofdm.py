"""OFDM modulation and demodulation (64-point FFT, 48 data subcarriers).

The 802.11a/g baseband carries 48 data subcarriers and 4 pilot subcarriers
on a 64-point FFT with a 16-sample cyclic prefix.  As in the paper's model,
synchronisation and channel estimation are not simulated: the receiver knows
the symbol boundaries and (for fading channels) the channel gain, so the
demodulator simply strips the cyclic prefix, applies the FFT and extracts
the data subcarriers.

The orthonormal FFT convention is used so that adding white noise of a given
variance in the time domain yields the same variance per subcarrier, which
keeps the SNR definition used by the channel models exact.
"""

import numpy as np

from repro.phy.dtype import dtype_policy
from repro.phy.params import CYCLIC_PREFIX, FFT_SIZE, NUM_DATA_SUBCARRIERS

#: Subcarrier indices (relative to DC) carrying pilots.
PILOT_SUBCARRIERS = (-21, -7, 7, 21)

#: Fixed pilot values (the standard modulates the last pilot by a polarity
#: sequence; a fixed pattern is sufficient for a model without sync).
PILOT_VALUES = (1.0, 1.0, 1.0, -1.0)

#: Subcarrier indices carrying data, in transmission order.
DATA_SUBCARRIERS = tuple(
    k
    for k in list(range(-26, 0)) + list(range(1, 27))
    if k not in PILOT_SUBCARRIERS
)


def _fft_bin(subcarrier):
    """Map a signed subcarrier index to a numpy FFT bin."""
    return subcarrier % FFT_SIZE


_DATA_BINS = np.array([_fft_bin(k) for k in DATA_SUBCARRIERS])
_PILOT_BINS = np.array([_fft_bin(k) for k in PILOT_SUBCARRIERS])


class OfdmModulator:
    """Maps constellation symbols onto OFDM time-domain samples.

    ``dtype`` selects the working-precision policy (see
    :mod:`repro.phy.dtype`); numpy's pocketfft preserves single
    precision, so a complex64 spectrum stays complex64 end to end.
    """

    def __init__(self, cyclic_prefix=CYCLIC_PREFIX, dtype=None):
        if not 0 <= cyclic_prefix < FFT_SIZE:
            raise ValueError("cyclic prefix must be in [0, %d)" % FFT_SIZE)
        self.cyclic_prefix = int(cyclic_prefix)
        self.dtype_policy = dtype_policy(dtype)

    @property
    def samples_per_symbol(self):
        """Time samples per OFDM symbol including the cyclic prefix."""
        return FFT_SIZE + self.cyclic_prefix

    def _modulate_blocks(self, blocks):
        """IFFT a ``(blocks, 48)`` symbol array into per-symbol time rows."""
        cdtype = self.dtype_policy.complex_dtype
        spectrum = np.zeros((blocks.shape[0], FFT_SIZE), dtype=cdtype)
        spectrum[:, _DATA_BINS] = blocks
        spectrum[:, _PILOT_BINS] = np.asarray(PILOT_VALUES, dtype=cdtype)
        time = np.fft.ifft(spectrum, axis=1, norm="ortho")
        if self.cyclic_prefix:
            time = np.concatenate([time[:, -self.cyclic_prefix:], time], axis=1)
        return time

    def modulate(self, symbols):
        """Modulate constellation symbols into time-domain samples.

        Parameters
        ----------
        symbols:
            Complex array whose length is a multiple of 48 (the data
            subcarrier count).

        Returns
        -------
        numpy.ndarray
            Complex time samples, ``samples_per_symbol`` per OFDM symbol.
        """
        symbols = np.asarray(symbols, dtype=self.dtype_policy.complex_dtype)
        if symbols.size % NUM_DATA_SUBCARRIERS:
            raise ValueError(
                "symbol count %d is not a multiple of %d data subcarriers"
                % (symbols.size, NUM_DATA_SUBCARRIERS)
            )
        blocks = symbols.reshape(-1, NUM_DATA_SUBCARRIERS)
        return self._modulate_blocks(blocks).reshape(-1)

    def modulate_batch(self, symbols):
        """Modulate a ``(packets, symbols)`` array into ``(packets, samples)``.

        All packets' OFDM symbols are stacked into one
        ``(packets * symbols_per_packet, 64)`` spectrum and transformed with
        a single IFFT call, so the batch costs one numpy dispatch regardless
        of the packet count.  Bit-exact with per-packet :meth:`modulate`.
        """
        symbols = np.asarray(symbols, dtype=self.dtype_policy.complex_dtype)
        if symbols.ndim != 2:
            raise ValueError("modulate_batch expects a (packets, symbols) array")
        if symbols.shape[1] % NUM_DATA_SUBCARRIERS:
            raise ValueError(
                "per-packet symbol count %d is not a multiple of %d data "
                "subcarriers" % (symbols.shape[1], NUM_DATA_SUBCARRIERS)
            )
        blocks = symbols.reshape(-1, NUM_DATA_SUBCARRIERS)
        return self._modulate_blocks(blocks).reshape(symbols.shape[0], -1)


class OfdmDemodulator:
    """Recovers data-subcarrier symbols from OFDM time-domain samples.

    ``dtype`` selects the working-precision policy (see
    :mod:`repro.phy.dtype`).
    """

    def __init__(self, cyclic_prefix=CYCLIC_PREFIX, dtype=None):
        if not 0 <= cyclic_prefix < FFT_SIZE:
            raise ValueError("cyclic prefix must be in [0, %d)" % FFT_SIZE)
        self.cyclic_prefix = int(cyclic_prefix)
        self.dtype_policy = dtype_policy(dtype)

    @property
    def samples_per_symbol(self):
        return FFT_SIZE + self.cyclic_prefix

    def demodulate(self, samples, channel_gain=None):
        """Demodulate time samples back into data-subcarrier symbols.

        Parameters
        ----------
        samples:
            Complex time-domain samples (a whole number of OFDM symbols).
        channel_gain:
            Optional complex flat-fading gain (scalar or one per OFDM
            symbol).  When provided, the demodulator performs the ideal
            zero-forcing equalisation the paper's receiver would perform
            with perfect channel knowledge.

        Returns
        -------
        numpy.ndarray
            Equalised data-subcarrier symbols in transmission order.
        """
        samples = np.asarray(samples, dtype=self.dtype_policy.complex_dtype)
        per_symbol = self.samples_per_symbol
        if samples.size % per_symbol:
            raise ValueError(
                "sample count %d is not a multiple of the OFDM symbol length %d"
                % (samples.size, per_symbol)
            )
        data = self._demodulate_blocks(samples.reshape(-1, per_symbol))
        if channel_gain is not None:
            gain = np.asarray(channel_gain,
                              dtype=self.dtype_policy.complex_dtype)
            if gain.ndim == 0:
                data = data / gain
            else:
                if gain.size != data.shape[0]:
                    raise ValueError(
                        "need one channel gain per OFDM symbol (%d), got %d"
                        % (data.shape[0], gain.size)
                    )
                data = data / gain[:, np.newaxis]
        return data.reshape(-1)

    def _demodulate_blocks(self, time_rows):
        """FFT ``(blocks, samples_per_symbol)`` rows into ``(blocks, 48)`` data."""
        spectrum = np.fft.fft(time_rows[:, self.cyclic_prefix:], axis=1, norm="ortho")
        return spectrum[:, _DATA_BINS]

    def demodulate_batch(self, samples, channel_gains=None):
        """Demodulate ``(packets, samples)`` into ``(packets, symbols)``.

        All packets' OFDM symbols go through a single FFT call.  Bit-exact
        with per-packet :meth:`demodulate`.

        Parameters
        ----------
        samples:
            ``(packets, num_samples)`` complex time-domain samples.
        channel_gains:
            Optional per-packet complex flat-fading gains, shape
            ``(packets,)``; each packet is equalised by its own gain.
        """
        samples = np.asarray(samples, dtype=self.dtype_policy.complex_dtype)
        if samples.ndim != 2:
            raise ValueError("demodulate_batch expects a (packets, samples) array")
        per_symbol = self.samples_per_symbol
        packets = samples.shape[0]
        if samples.shape[1] % per_symbol:
            raise ValueError(
                "per-packet sample count %d is not a multiple of the OFDM "
                "symbol length %d" % (samples.shape[1], per_symbol)
            )
        data = self._demodulate_blocks(samples.reshape(-1, per_symbol))
        data = data.reshape(packets, -1)
        if channel_gains is not None:
            gains = np.asarray(channel_gains,
                               dtype=self.dtype_policy.complex_dtype)
            if gains.ndim == 0:
                gains = np.broadcast_to(gains, (packets,))
            if gains.shape != (packets,):
                raise ValueError(
                    "need one channel gain per packet (%d), got shape %r"
                    % (packets, gains.shape)
                )
            data = data / gains[:, np.newaxis]
        return data


def num_ofdm_symbols(num_coded_bits, coded_bits_per_symbol):
    """Number of OFDM symbols needed for ``num_coded_bits`` (with padding)."""
    return int(np.ceil(num_coded_bits / coded_bits_per_symbol))
