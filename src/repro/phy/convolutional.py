"""Convolutional encoder and puncturing for the 802.11a/g mother code.

802.11a/g uses the industry-standard constraint-length-7, rate-1/2
convolutional code with generator polynomials 133 and 171 (octal).  Higher
rates (2/3, 3/4) are obtained by *puncturing*: deleting coded bits according
to a fixed pattern before transmission and re-inserting neutral soft values
("erasures") at the receiver before decoding.

The encoder here is the reference implementation used by every decoder test
in the repository; the decoders themselves (Viterbi, SOVA, BCJR) share the
trellis built in :mod:`repro.phy.trellis`.
"""

import numpy as np

from repro.phy.params import RATE_1_2


class ConvolutionalCode:
    """A binary convolutional code defined by its generator polynomials.

    Parameters
    ----------
    constraint_length:
        Number of input bits that influence each output (shift register
        length + 1).  802.11a/g uses 7.
    generators:
        Iterable of generator polynomials given as integers whose binary
        expansion selects taps, most significant bit first (the conventional
        octal notation: 0o133, 0o171).
    """

    def __init__(self, constraint_length=7, generators=(0o133, 0o171)):
        if constraint_length < 2:
            raise ValueError("constraint length must be at least 2")
        self.constraint_length = int(constraint_length)
        self.generators = tuple(int(g) for g in generators)
        if not self.generators:
            raise ValueError("at least one generator polynomial is required")
        limit = 1 << self.constraint_length
        for generator in self.generators:
            if not 0 < generator < limit:
                raise ValueError(
                    "generator 0o%o does not fit constraint length %d"
                    % (generator, self.constraint_length)
                )
        #: Number of memory bits (states = 2**memory).
        self.memory = self.constraint_length - 1
        #: Number of coded bits produced per input bit.
        self.outputs_per_input = len(self.generators)

    @property
    def num_states(self):
        """Number of encoder states."""
        return 1 << self.memory

    def encode(self, bits, terminate=True):
        """Encode ``bits`` starting from the all-zero state.

        Parameters
        ----------
        bits:
            Input bit array (0/1): 1-D for one packet or 2-D
            ``(packets, bits)`` for a batch (every row encoded
            independently, each with its own termination tail).
        terminate:
            When ``True`` (the 802.11 behaviour) ``memory`` zero tail bits
            are appended so the encoder returns to the all-zero state, which
            lets the decoder anchor both ends of the trellis.

        Returns
        -------
        numpy.ndarray
            Coded bits, ``outputs_per_input`` per input bit (including tail
            bits when terminated), interleaved output-first:
            ``A0 B0 A1 B1 ...`` for two generators.  Batched input yields a
            ``(packets, coded_bits)`` array.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        single = bits.ndim == 1
        if single:
            bits = bits[np.newaxis, :]
        packets, length = bits.shape
        if terminate:
            bits = np.concatenate(
                [bits, np.zeros((packets, self.memory), dtype=np.uint8)], axis=1
            )
            length += self.memory
        # The encoder is a feed-forward shift register, so each output stream
        # is simply the XOR of delayed copies of the input selected by the
        # generator taps -- which vectorises to a handful of shifted XORs
        # applied to the whole (packets, bits) matrix at once.
        padded = np.concatenate(
            [np.zeros((packets, self.memory), dtype=np.uint8), bits], axis=1
        )
        coded = np.empty((packets, length * self.outputs_per_input), dtype=np.uint8)
        for j, generator in enumerate(self.generators):
            stream = np.zeros((packets, length), dtype=np.uint8)
            for delay in range(self.constraint_length):
                if (generator >> delay) & 1:
                    start = self.memory - delay
                    stream ^= padded[:, start : start + length]
            coded[:, j :: self.outputs_per_input] = stream
        return coded[0] if single else coded

    def __repr__(self):
        return "ConvolutionalCode(K=%d, generators=%s)" % (
            self.constraint_length,
            "/".join("0o%o" % g for g in self.generators),
        )


#: The 802.11a/g mother code: K=7, generators 133/171 octal, rate 1/2.
IEEE80211_CODE = ConvolutionalCode(7, (0o133, 0o171))


def puncture(coded_bits, code_rate):
    """Delete coded bits according to ``code_rate``'s puncture pattern.

    ``coded_bits`` may be a bit array (transmit side) or a soft-value array;
    only the kept positions are returned, in order.  A 2-D
    ``(packets, coded_bits)`` array punctures every row with the same mask
    (one fancy-index gather for the whole batch).
    """
    coded_bits = np.asarray(coded_bits)
    pattern = np.asarray(code_rate.puncture_pattern, dtype=bool)
    if pattern.all():
        return coded_bits.copy()
    length = coded_bits.shape[-1]
    repeats = int(np.ceil(length / pattern.size))
    mask = np.tile(pattern, repeats)[:length]
    return coded_bits[..., mask]


def depuncture(soft_bits, code_rate, total_length, erasure=0.0, dtype=None):
    """Re-insert erasures where the transmitter punctured coded bits.

    Parameters
    ----------
    soft_bits:
        Received soft values for the transmitted (kept) positions: 1-D for
        one packet or 2-D ``(packets, kept)`` for a batch (every row is
        expanded with the same mask in one vectorised scatter).
    code_rate:
        The :class:`~repro.phy.params.CodeRate` used by the transmitter.
    total_length:
        Length of the un-punctured coded stream (2x the number of trellis
        steps for the rate-1/2 mother code).
    erasure:
        Soft value inserted at punctured positions.  Zero means "no
        information", which is the correct neutral value for LLR-style soft
        inputs.
    dtype:
        Working float dtype of the output (see :mod:`repro.phy.dtype`);
        defaults to float64, the historical behaviour.

    Returns
    -------
    numpy.ndarray
        Float array of length ``total_length`` (``(packets, total_length)``
        for batched input).
    """
    soft_bits = np.asarray(soft_bits, dtype=float if dtype is None else dtype)
    pattern = np.asarray(code_rate.puncture_pattern, dtype=bool)
    repeats = int(np.ceil(total_length / pattern.size))
    mask = np.tile(pattern, repeats)[:total_length]
    expected = int(mask.sum())
    if soft_bits.shape[-1] != expected:
        raise ValueError(
            "depuncture expected %d soft values for length %d at rate %s, got %d"
            % (expected, total_length, code_rate, soft_bits.shape[-1])
        )
    full = np.full(soft_bits.shape[:-1] + (total_length,), float(erasure),
                   dtype=soft_bits.dtype)
    full[..., mask] = soft_bits
    return full


def punctured_length(num_input_bits, code_rate, outputs_per_input=2):
    """Number of transmitted coded bits for ``num_input_bits`` trellis steps."""
    total = num_input_bits * outputs_per_input
    pattern = np.asarray(code_rate.puncture_pattern, dtype=bool)
    repeats = int(np.ceil(total / pattern.size))
    mask = np.tile(pattern, repeats)[:total]
    return int(mask.sum())


def coded_length_for_rate(num_data_bits, code_rate=RATE_1_2, memory=6):
    """Transmitted coded bits for a terminated packet of ``num_data_bits``."""
    return punctured_length(num_data_bits + memory, code_rate)
