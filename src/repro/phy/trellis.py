"""Trellis construction and the shared BMU / PMU decoder kernels.

The paper points out that SOVA and BCJR share their two computational
kernels: the *branch metric unit* (BMU), which scores how well the received
soft values match the coded bits expected on each trellis transition, and
the *path metric unit* (PMU), which performs the add-compare-select (ACS)
recursion over those branch metrics.  This module builds the trellis of a
:class:`~repro.phy.convolutional.ConvolutionalCode` once and provides both
kernels as batched numpy operations; :mod:`repro.phy.viterbi`,
:mod:`repro.phy.sova` and :mod:`repro.phy.bcjr` are all written on top of
them, mirroring the hardware sharing in the paper.

Conventions
-----------
* Soft inputs are log-likelihood ratios with the sign convention
  ``positive = bit 1 more likely`` (the demapper's definition, equation 2 of
  the paper).
* Branch metrics are *correlations*: larger is better.  The metric of a
  transition whose expected coded bits are ``c_j`` given soft inputs
  ``l_j`` is ``0.5 * sum_j (2 c_j - 1) l_j``; in the max-log domain path
  metrics are sums of branch metrics and decisions maximise the total.
* All kernels operate on a batch dimension so that many packets can be
  decoded in one pass, which is how the Python reproduction recovers some of
  the throughput the paper gets from the FPGA.
"""

import numpy as np

from repro.phy.convolutional import IEEE80211_CODE


class Trellis:
    """State-transition structure of a binary-input convolutional code.

    Parameters
    ----------
    code:
        The :class:`~repro.phy.convolutional.ConvolutionalCode` to build the
        trellis for.  Defaults to the 802.11a/g K=7 mother code.

    Attributes
    ----------
    num_states:
        Number of encoder states (64 for K=7).
    next_state:
        ``(num_states, 2)`` array: state reached from ``s`` on input ``b``.
        By construction this is the de Bruijn shift-register graph
        ``next_state[s, b] = ((s << 1) | b) & (num_states - 1)``, so
        ``prev_state[s] = [s >> 1, (s >> 1) + num_states / 2]`` -- the
        structure the fast BCJR kernels rely on to replace state gathers
        with reshaped views.
    outputs:
        ``(num_states, 2, n_out)`` array of expected coded bits per
        transition.
    output_signs:
        Same shape, with bits mapped to +/-1 (used by the BMU correlation).
    prev_state, prev_input:
        ``(num_states, 2)`` arrays listing, for each state, its two
        predecessor states and the input bit that labels each incoming edge.
    """

    def __init__(self, code=IEEE80211_CODE):
        self.code = code
        self.num_states = code.num_states
        self.n_out = code.outputs_per_input
        num_states = self.num_states
        memory_mask = num_states - 1
        register_mask = (1 << code.constraint_length) - 1

        self.next_state = np.zeros((num_states, 2), dtype=np.int64)
        self.outputs = np.zeros((num_states, 2, self.n_out), dtype=np.uint8)
        for state in range(num_states):
            for bit in range(2):
                register = ((state << 1) | bit) & register_mask
                self.next_state[state, bit] = register & memory_mask
                for j, generator in enumerate(code.generators):
                    self.outputs[state, bit, j] = bin(register & generator).count("1") & 1
        self.output_signs = self.outputs.astype(np.float64) * 2.0 - 1.0

        # Predecessor tables: every state has exactly two incoming edges for
        # a binary-input code.
        self.prev_state = np.zeros((num_states, 2), dtype=np.int64)
        self.prev_input = np.zeros((num_states, 2), dtype=np.int64)
        counts = np.zeros(num_states, dtype=np.int64)
        for state in range(num_states):
            for bit in range(2):
                successor = self.next_state[state, bit]
                slot = counts[successor]
                self.prev_state[successor, slot] = state
                self.prev_input[successor, slot] = bit
                counts[successor] += 1
        if not np.all(counts == 2):
            raise ValueError("trellis construction failed: irregular in-degree")

        # Half-scaled sign table: folding the BMU's 0.5 factor into the
        # correlation matrix (exact -- it only scales the power-of-two
        # exponent) saves a full pass over the frame-sized metric tensor.
        self._half_output_signs = 0.5 * self.output_signs

        # A step has only 2**n_out distinct branch-metric values (one per
        # coded-bit pattern).  These tables map transitions onto pattern
        # indices so decoders can correlate once per pattern and expand by
        # gather (see BranchMetricUnit.compute_compressed).
        weights = 1 << np.arange(self.n_out - 1, -1, -1)
        #: ``(num_states, 2)`` pattern index of each (state, input) transition.
        self.branch_code = self.outputs.astype(np.int64) @ weights
        #: Same, re-indexed by (destination state, incoming edge).
        self.edge_code = self.branch_code[self.prev_state, self.prev_input]
        patterns = (
            np.arange(1 << self.n_out)[:, np.newaxis]
            >> np.arange(self.n_out - 1, -1, -1)
        ) & 1
        self._half_sign_patterns = patterns.astype(np.float64) - 0.5
        # Reduced-precision copies of the sign tables, built on demand for
        # the float32 fast path (the float64 entries are the originals, so
        # the default path never pays a cast).
        self._sign_table_cache = {}

    def half_output_signs(self, dtype=np.float64):
        """The half-scaled ``(states, 2, n_out)`` sign table in ``dtype``."""
        return self._sign_table(self._half_output_signs, dtype)

    def half_sign_patterns(self, dtype=np.float64):
        """The half-scaled ``(2**n_out, n_out)`` pattern table in ``dtype``."""
        return self._sign_table(self._half_sign_patterns, dtype)

    def _sign_table(self, table, dtype):
        dtype = np.dtype(dtype)
        if dtype == table.dtype:
            return table
        key = (id(table), dtype)
        cached = self._sign_table_cache.get(key)
        if cached is None:
            cached = self._sign_table_cache[key] = table.astype(dtype)
        return cached

    def __repr__(self):
        return "Trellis(states=%d, outputs_per_input=%d)" % (
            self.num_states,
            self.n_out,
        )


#: A very negative path metric used to mark impossible states.  Chosen small
#: enough to dominate any realistic metric sum but large enough that adding
#: branch metrics never overflows to -inf arithmetic problems.
NEGATIVE_INFINITY_METRIC = -1.0e12


class BranchMetricUnit:
    """Computes branch metrics for every transition of every trellis step.

    The BMU is identical for Viterbi, SOVA and BCJR (as in the paper); it is
    a correlation between the received soft values and the +/-1 pattern each
    transition would have transmitted.
    """

    def __init__(self, trellis):
        self.trellis = trellis

    def compute(self, soft_step):
        """Branch metrics for one trellis step.

        Parameters
        ----------
        soft_step:
            Array of shape ``(batch, n_out)`` holding the soft values of the
            coded bits belonging to this step.

        Returns
        -------
        numpy.ndarray
            ``(batch, num_states, 2)`` branch metrics.
        """
        soft_step = np.asarray(soft_step, dtype=np.float64)
        if soft_step.ndim == 1:
            soft_step = soft_step[np.newaxis, :]
        return 0.5 * np.einsum("sbj,nj->nsb", self.trellis.output_signs, soft_step)

    @staticmethod
    def _correlate(soft, half_signs, time_major=False):
        """Correlate soft values against a half-scaled ``(..., n_out)``
        sign table.

        The contraction is expressed as one BLAS matmul over the flattened
        (batch * steps) axis, which is far faster than an einsum loop for
        frame-sized inputs; the 0.5 factor lives in the table, so no second
        pass over the output is needed.  With ``time_major`` the result is
        laid out ``(steps, batch, ...)`` so per-step slices are contiguous
        -- what a step-sequential recursion wants.

        The table's dtype sets the working precision: soft values are
        coerced to match, so passing a float32 table keeps the whole
        correlation (and everything downstream of it) in single
        precision.
        """
        soft = np.asarray(soft, dtype=half_signs.dtype)
        if soft.ndim == 2:
            soft = soft[np.newaxis, :, :]
        if time_major:
            soft = np.ascontiguousarray(soft.transpose(1, 0, 2))
        flat = soft.reshape(-1, soft.shape[-1]) @ half_signs.reshape(
            -1, half_signs.shape[-1]
        ).T
        return flat.reshape(soft.shape[:2] + half_signs.shape[:-1])

    def compute_all(self, soft, dtype=np.float64):
        """Branch metrics for every step of a packet.

        Parameters
        ----------
        soft:
            ``(batch, num_steps, n_out)`` soft values.
        dtype:
            Working float dtype of the correlation (see
            :mod:`repro.phy.dtype`).

        Returns
        -------
        numpy.ndarray
            ``(batch, num_steps, num_states, 2)`` branch metrics.
        """
        return self._correlate(soft, self.trellis.half_output_signs(dtype))

    def compute_compressed(self, soft, time_major=False, dtype=np.float64):
        """The ``2**n_out`` distinct branch-metric values of every step.

        A trellis step only has one metric per coded-bit pattern, so the
        full ``(num_states, 2)`` tensor of :meth:`compute_all` is massively
        redundant.  This computes just the distinct values --
        ``(batch, steps, 2**n_out)`` (or ``(steps, batch, 2**n_out)`` with
        ``time_major``) -- and decoders expand them on demand with the
        trellis' ``branch_code`` / ``edge_code`` index tables:
        ``vals[..., branch_code]`` reproduces :meth:`compute_all` exactly.
        """
        return self._correlate(
            soft, self.trellis.half_sign_patterns(dtype), time_major=time_major
        )


class PathMetricUnit:
    """Add-compare-select recursions shared by the decoders.

    The PMU is "parameterized in terms of path permutation" (forward vs
    backward traversal) exactly as the paper describes; the two directions
    are :meth:`forward_step` and :meth:`backward_step`.
    """

    def __init__(self, trellis):
        self.trellis = trellis

    def initial_metrics(self, batch, known_start=True, dtype=np.float64):
        """Starting path metrics.

        With ``known_start`` the all-zero state gets metric 0 and every other
        state the impossible metric; otherwise all states start equal (the
        "uncertain" initial state the paper uses for provisional BCJR
        blocks).
        """
        metrics = np.full(
            (batch, self.trellis.num_states), NEGATIVE_INFINITY_METRIC, dtype=dtype
        )
        if known_start:
            metrics[:, 0] = 0.0
        else:
            metrics[:, :] = 0.0
        return metrics

    def forward_step(self, metrics, branch_metrics):
        """One forward ACS step.

        Parameters
        ----------
        metrics:
            ``(batch, num_states)`` path metrics entering this step.
        branch_metrics:
            ``(batch, num_states, 2)`` branch metrics of this step.

        Returns
        -------
        tuple
            ``(new_metrics, survivor_prev_state, survivor_input, delta)``
            where ``survivor_*`` identify the winning incoming edge of each
            state and ``delta`` is the winning-minus-losing metric margin
            used by SOVA's reliability update.
        """
        trellis = self.trellis
        # Candidate metric for each (state, incoming-edge) pair.
        prev_metric = metrics[:, trellis.prev_state]  # (batch, states, 2)
        edge_metric = branch_metrics[
            :, trellis.prev_state, trellis.prev_input
        ]  # (batch, states, 2)
        candidates = prev_metric + edge_metric
        winner = np.argmax(candidates, axis=2)  # (batch, states)
        new_metrics = np.take_along_axis(
            candidates, winner[:, :, np.newaxis], axis=2
        )[:, :, 0]
        loser_metrics = np.take_along_axis(
            candidates, (1 - winner)[:, :, np.newaxis], axis=2
        )[:, :, 0]
        delta = new_metrics - loser_metrics
        survivor_prev_state = np.take_along_axis(
            np.broadcast_to(trellis.prev_state, candidates.shape[:2] + (2,)),
            winner[:, :, np.newaxis],
            axis=2,
        )[:, :, 0]
        survivor_input = np.take_along_axis(
            np.broadcast_to(trellis.prev_input, candidates.shape[:2] + (2,)),
            winner[:, :, np.newaxis],
            axis=2,
        )[:, :, 0]
        return new_metrics, survivor_prev_state, survivor_input, delta

    def backward_step(self, metrics, branch_metrics):
        """One backward ACS step (used by BCJR's beta recursion).

        Parameters
        ----------
        metrics:
            ``(batch, num_states)`` path metrics of the *next* step
            (beta_{t+1}).
        branch_metrics:
            ``(batch, num_states, 2)`` branch metrics of the current step.

        Returns
        -------
        numpy.ndarray
            ``(batch, num_states)`` beta_t.
        """
        trellis = self.trellis
        successor_metric = metrics[:, trellis.next_state]  # (batch, states, 2)
        candidates = successor_metric + branch_metrics
        return np.max(candidates, axis=2)

    def normalize(self, metrics):
        """Subtract the per-row maximum to keep metrics numerically bounded.

        Works on any ``(..., num_states)`` layout (the stacked-block BCJR
        sweeps carry extra leading axes).
        """
        return metrics - np.max(metrics, axis=-1, keepdims=True)


def reshape_soft_input(soft, n_out=2, dtype=np.float64):
    """Reshape a flat soft-value stream into ``(batch, steps, n_out)``.

    Accepts a 1-D array (one packet) or a 2-D ``(batch, length)`` array; the
    length must be a multiple of ``n_out``.  ``dtype`` names the decoder's
    working precision (see :mod:`repro.phy.dtype`).
    """
    soft = np.asarray(soft, dtype=dtype)
    if soft.ndim == 1:
        soft = soft[np.newaxis, :]
    if soft.shape[1] % n_out:
        raise ValueError(
            "soft input length %d is not a multiple of %d" % (soft.shape[1], n_out)
        )
    return soft.reshape(soft.shape[0], soft.shape[1] // n_out, n_out)
