"""802.11a/g rate parameters: modulations, code rates and the 8-entry rate table.

Figure 2 of the paper lists the eight 802.11g OFDM rates (6 to 54 Mb/s).
Each rate is a (modulation, convolutional code rate) pair; with 48 data
subcarriers per OFDM symbol and a 4 microsecond symbol period those pairs
determine the coded and data bits per symbol and the nominal line rate.
"""

from fractions import Fraction

import numpy as np

#: Number of data subcarriers in an 802.11a/g OFDM symbol.
NUM_DATA_SUBCARRIERS = 48

#: Number of pilot subcarriers.
NUM_PILOT_SUBCARRIERS = 4

#: FFT length used by 802.11a/g.
FFT_SIZE = 64

#: Cyclic-prefix length in samples.
CYCLIC_PREFIX = 16

#: OFDM symbol duration in microseconds (3.2 us useful + 0.8 us guard).
SYMBOL_DURATION_US = 4.0


class Modulation:
    """A constellation used by 802.11a/g.

    Parameters
    ----------
    name:
        Display name (``"BPSK"``, ``"QPSK"``, ``"QAM16"``, ``"QAM64"``).
    bits_per_symbol:
        Bits carried by one constellation point.
    normalization:
        Factor that scales integer constellation coordinates to unit average
        energy (1, 1/sqrt(2), 1/sqrt(10), 1/sqrt(42) for the four 802.11
        constellations).
    """

    def __init__(self, name, bits_per_symbol, normalization):
        self.name = name
        self.bits_per_symbol = int(bits_per_symbol)
        self.normalization = float(normalization)

    def __eq__(self, other):
        if not isinstance(other, Modulation):
            return NotImplemented
        return self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return "Modulation(%s)" % self.name


BPSK = Modulation("BPSK", 1, 1.0)
QPSK = Modulation("QPSK", 2, 1.0 / np.sqrt(2.0))
QAM16 = Modulation("QAM16", 4, 1.0 / np.sqrt(10.0))
QAM64 = Modulation("QAM64", 6, 1.0 / np.sqrt(42.0))

#: All modulations, indexed by name.
MODULATIONS = {m.name: m for m in (BPSK, QPSK, QAM16, QAM64)}


class CodeRate:
    """A convolutional code rate obtained by puncturing the rate-1/2 mother code.

    Parameters
    ----------
    numerator, denominator:
        The code rate as a fraction (1/2, 2/3 or 3/4 for 802.11a/g).
    puncture_pattern:
        Boolean mask over the mother-code output (A0 B0 A1 B1 ...)
        indicating which coded bits are transmitted.  The rate-1/2 pattern
        keeps everything.
    """

    def __init__(self, numerator, denominator, puncture_pattern):
        self.fraction = Fraction(numerator, denominator)
        self.puncture_pattern = tuple(bool(keep) for keep in puncture_pattern)
        kept = sum(self.puncture_pattern)
        if kept == 0:
            raise ValueError("puncture pattern must keep at least one bit")
        # Consistency: the pattern spans `numerator` input bits of the
        # rate-1/2 mother code (2*numerator coded bits) and keeps
        # `denominator` of them... actually keeps kept bits such that
        # numerator/kept*2 == fraction; validated numerically below.
        inputs = len(self.puncture_pattern) // 2
        if Fraction(inputs, kept) != self.fraction:
            raise ValueError(
                "puncture pattern %r does not realise rate %s"
                % (puncture_pattern, self.fraction)
            )

    @property
    def numerator(self):
        return self.fraction.numerator

    @property
    def denominator(self):
        return self.fraction.denominator

    def __float__(self):
        return float(self.fraction)

    def __eq__(self, other):
        if not isinstance(other, CodeRate):
            return NotImplemented
        return self.fraction == other.fraction

    def __hash__(self):
        return hash(self.fraction)

    def __repr__(self):
        return "CodeRate(%d/%d)" % (self.fraction.numerator, self.fraction.denominator)


#: Rate 1/2: no puncturing (pattern over one input bit / two coded bits).
RATE_1_2 = CodeRate(1, 2, (True, True))

#: Rate 2/3: 802.11a pattern over 2 input bits (4 mother bits, keep 3).
RATE_2_3 = CodeRate(2, 3, (True, True, True, False))

#: Rate 3/4: 802.11a pattern over 3 input bits (6 mother bits, keep 4).
RATE_3_4 = CodeRate(3, 4, (True, True, True, False, False, True))

#: All code rates, indexed by "n/d" string.
CODE_RATES = {"1/2": RATE_1_2, "2/3": RATE_2_3, "3/4": RATE_3_4}


class PhyRate:
    """One row of the 802.11a/g rate table.

    Attributes
    ----------
    data_rate_mbps:
        Nominal line rate (6 to 54 Mb/s).
    modulation:
        The :class:`Modulation` used on each data subcarrier.
    code_rate:
        The :class:`CodeRate` of the punctured convolutional code.
    coded_bits_per_symbol:
        N_CBPS -- coded bits carried per OFDM symbol.
    data_bits_per_symbol:
        N_DBPS -- information bits carried per OFDM symbol.
    """

    def __init__(self, data_rate_mbps, modulation, code_rate):
        self.data_rate_mbps = float(data_rate_mbps)
        self.modulation = modulation
        self.code_rate = code_rate
        self.coded_bits_per_symbol = NUM_DATA_SUBCARRIERS * modulation.bits_per_symbol
        data_bits = Fraction(self.coded_bits_per_symbol) * code_rate.fraction
        if data_bits.denominator != 1:
            raise ValueError(
                "rate %s with %s does not yield an integer N_DBPS"
                % (code_rate, modulation)
            )
        self.data_bits_per_symbol = int(data_bits)

    @property
    def name(self):
        """Short name such as ``"QAM16 3/4"``."""
        return "%s %d/%d" % (
            self.modulation.name,
            self.code_rate.numerator,
            self.code_rate.denominator,
        )

    @property
    def line_rate_mbps(self):
        """Nominal line rate implied by N_DBPS and the 4 us symbol time."""
        return self.data_bits_per_symbol / SYMBOL_DURATION_US

    def __eq__(self, other):
        if not isinstance(other, PhyRate):
            return NotImplemented
        return (
            self.modulation == other.modulation and self.code_rate == other.code_rate
        )

    def __hash__(self):
        return hash((self.modulation, self.code_rate))

    def __repr__(self):
        return "PhyRate(%s, %.0f Mb/s)" % (self.name, self.data_rate_mbps)


#: The eight 802.11a/g rates, in the order of the paper's Figure 2.
RATE_TABLE = (
    PhyRate(6, BPSK, RATE_1_2),
    PhyRate(9, BPSK, RATE_3_4),
    PhyRate(12, QPSK, RATE_1_2),
    PhyRate(18, QPSK, RATE_3_4),
    PhyRate(24, QAM16, RATE_1_2),
    PhyRate(36, QAM16, RATE_3_4),
    PhyRate(48, QAM64, RATE_2_3),
    PhyRate(54, QAM64, RATE_3_4),
)


def rate_by_mbps(data_rate_mbps):
    """Return the :class:`PhyRate` with the given nominal rate in Mb/s."""
    for rate in RATE_TABLE:
        if rate.data_rate_mbps == float(data_rate_mbps):
            return rate
    raise KeyError(
        "no 802.11a/g rate at %r Mb/s (valid: %s)"
        % (data_rate_mbps, ", ".join(str(int(r.data_rate_mbps)) for r in RATE_TABLE))
    )


def rate_by_name(name):
    """Return the :class:`PhyRate` whose :attr:`PhyRate.name` matches ``name``."""
    for rate in RATE_TABLE:
        if rate.name == name:
            return rate
    raise KeyError(
        "no 802.11a/g rate named %r (valid: %s)"
        % (name, ", ".join(r.name for r in RATE_TABLE))
    )


def rate_index(rate):
    """Return the position of ``rate`` in :data:`RATE_TABLE` (0 = slowest)."""
    for index, candidate in enumerate(RATE_TABLE):
        if candidate == rate:
            return index
    raise KeyError("rate %r is not in the 802.11a/g rate table" % (rate,))
