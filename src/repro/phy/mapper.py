"""Gray-coded constellation mapping for BPSK, QPSK, 16-QAM and 64-QAM.

The 802.11a/g constellations are square QAM with independent Gray coding of
the in-phase and quadrature axes and a per-constellation normalisation that
gives every modulation unit average symbol energy (K_mod = 1, 1/sqrt(2),
1/sqrt(10), 1/sqrt(42)).  The level tables below follow the standard's bit
ordering: the first bit of each axis selects the sign, subsequent bits select
the magnitude with Gray coding.
"""

import numpy as np

from repro.phy.dtype import dtype_policy
from repro.phy.params import BPSK, MODULATIONS, QAM16, QAM64, QPSK

#: Gray-coded amplitude levels per axis, indexed by the integer value of the
#: axis bits (most significant first).
_AXIS_LEVELS = {
    1: np.array([-1.0, 1.0]),
    2: np.array([-3.0, -1.0, 3.0, 1.0]),  # 00,01,10,11 -> -3,-1,+3,+1
    3: np.array([-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0]),
}
# The 3-bit table realises: 000->-7 001->-5 011->-3 010->-1 110->+1 111->+3
# 101->+5 100->+7 (indexing by the binary value of b0b1b2).


def _axis_bits(modulation):
    """Bits per I or Q axis for a modulation (0 for the Q axis of BPSK)."""
    if modulation == BPSK:
        return 1, 0
    half = modulation.bits_per_symbol // 2
    return half, half


def axis_levels(num_bits):
    """Return the Gray-coded level table for an axis with ``num_bits`` bits."""
    try:
        return _AXIS_LEVELS[num_bits]
    except KeyError:
        raise ValueError("unsupported axis width %d bits" % num_bits) from None


class Mapper:
    """Maps interleaved coded bits onto constellation symbols.

    Parameters
    ----------
    modulation:
        One of the :mod:`repro.phy.params` modulations, or its name.
    dtype:
        Working-precision policy (see :mod:`repro.phy.dtype`); sets the
        complex dtype of the batched lookup table, so a float32 chain
        emits complex64 symbols from the start.
    """

    def __init__(self, modulation, dtype=None):
        if isinstance(modulation, str):
            modulation = MODULATIONS[modulation]
        self.modulation = modulation
        self.i_bits, self.q_bits = _axis_bits(modulation)
        self.dtype_policy = dtype_policy(dtype)
        self._lut = None  # bit-pattern -> symbol lookup table, built lazily

    def map(self, bits):
        """Map a bit array onto complex symbols with unit average energy.

        The bit count must be a multiple of the modulation's bits per
        symbol.  For BPSK only the in-phase axis is used.
        """
        bits = np.asarray(bits, dtype=np.int64)
        bps = self.modulation.bits_per_symbol
        if bits.size % bps:
            raise ValueError(
                "bit count %d is not a multiple of %d bits/symbol" % (bits.size, bps)
            )
        groups = bits.reshape(-1, bps)
        i_levels = axis_levels(self.i_bits)
        i_index = np.zeros(groups.shape[0], dtype=np.int64)
        for b in range(self.i_bits):
            i_index = (i_index << 1) | groups[:, b]
        real = i_levels[i_index]
        if self.q_bits:
            q_levels = axis_levels(self.q_bits)
            q_index = np.zeros(groups.shape[0], dtype=np.int64)
            for b in range(self.q_bits):
                q_index = (q_index << 1) | groups[:, self.i_bits + b]
            imag = q_levels[q_index]
        else:
            imag = np.zeros(groups.shape[0])
        return (real + 1j * imag) * self.modulation.normalization

    def map_batch(self, bits):
        """Map a ``(packets, bits)`` array onto ``(packets, symbols)`` symbols.

        The batched path goes through a cached lookup table over all
        ``2**bits_per_symbol`` constellation points (built once per mapper
        with :meth:`map`, so it is bit-exact with the scalar path): the bit
        groups are packed into integer indices and gathered from the table
        in one fancy-index operation, with no per-packet Python iteration.
        """
        bits = np.asarray(bits, dtype=np.int64)
        if bits.ndim != 2:
            raise ValueError("map_batch expects a (packets, bits) array")
        bps = self.modulation.bits_per_symbol
        if bits.shape[1] % bps:
            raise ValueError(
                "bit count %d is not a multiple of %d bits/symbol"
                % (bits.shape[1], bps)
            )
        if self._lut is None:
            self._lut = self.constellation().astype(
                self.dtype_policy.complex_dtype, copy=False)
        groups = bits.reshape(bits.shape[0], -1, bps)
        weights = 1 << np.arange(bps - 1, -1, -1, dtype=np.int64)
        indices = groups @ weights
        return self._lut[indices]

    def constellation(self):
        """Return every constellation point (in bit-index order)."""
        bps = self.modulation.bits_per_symbol
        count = 1 << bps
        bits = ((np.arange(count)[:, None] >> np.arange(bps - 1, -1, -1)) & 1).astype(
            np.int64
        )
        return self.map(bits.reshape(-1))

    def __repr__(self):
        return "Mapper(%s)" % self.modulation.name


def map_bits(bits, modulation):
    """Convenience wrapper: map ``bits`` using ``modulation``."""
    return Mapper(modulation).map(bits)
