"""Soft demapper based on the Tosato/Bisaglia simplified expressions.

The demapper converts each received subcarrier symbol back into one soft
value (an LLR, equation 2 in the paper) per coded bit.  Following Tosato and
Bisaglia the per-axis expressions reduce to piecewise-linear functions of the
received coordinate that need no multiplications or divisions:

=========  ============================================
bit        soft value (y expressed in integer level units)
=========  ============================================
sign bit   ``y``
16-QAM b1  ``2 - |y|``
64-QAM b1  ``4 - |y|``
64-QAM b2  ``2 - |4 - |y||``
=========  ============================================

The *true* LLR additionally carries the factor ``Es/N0 * S_modulation``
(equation 3).  The paper's hardware demapper drops that factor because hard
decisions only depend on relative ordering, which is exactly what lets the
decoder datapath shrink to 3-8 bits -- but it is also why the BER estimator
downstream must reintroduce the scaling (equation 5).  The ``scaled``
parameter selects between the two behaviours, and ``output_format`` applies
the hardware quantisation.
"""

import numpy as np

from repro.phy.mapper import _axis_bits
from repro.phy.params import BPSK, MODULATIONS, QAM16, QAM64, QPSK

#: Per-modulation scaling constant ``S_modulation`` relating the unscaled
#: distance metric to the true LLR under the max-log approximation: the LLR
#: of the sign bit is ``4 * Es/N0 * K_mod^2 * (levels distance)``; expressing
#: the metric in integer level units folds ``K_mod^2`` into this constant.
MODULATION_SCALE = {
    "BPSK": 4.0,
    "QPSK": 4.0 / 2.0,
    "QAM16": 4.0 / 10.0,
    "QAM64": 4.0 / 42.0,
}


def axis_soft_values(y, axis_bits):
    """Simplified per-axis soft values for one Gray-coded axis.

    Parameters
    ----------
    y:
        Received coordinate(s) in integer level units (i.e. already divided
        by the constellation normalisation).
    axis_bits:
        Number of bits carried by this axis (1, 2 or 3).

    Returns
    -------
    numpy.ndarray
        Array of shape ``y.shape + (axis_bits,)`` with positive values
        meaning "bit = 1 more likely".
    """
    y = np.asarray(y, dtype=np.float64)
    out = np.empty(y.shape + (axis_bits,), dtype=np.float64)
    out[..., 0] = y
    if axis_bits >= 2:
        distance = 4.0 if axis_bits == 3 else 2.0
        out[..., 1] = distance - np.abs(y)
    if axis_bits >= 3:
        out[..., 2] = 2.0 - np.abs(4.0 - np.abs(y))
    return out


class Demapper:
    """Converts equalised subcarrier symbols into per-bit soft values.

    Parameters
    ----------
    modulation:
        Constellation of the received symbols (object or name).
    snr_db:
        Signal-to-noise ratio assumed when ``scaled`` is true.  Ignored in
        hardware mode.
    scaled:
        When ``True`` the output is the true LLR of equation 3 (including
        the ``Es/N0`` and ``S_modulation`` factors).  When ``False``
        (hardware mode, the paper's implementation) only the distance term
        is produced.
    output_format:
        Optional :class:`~repro.fixedpoint.FixedPointFormat` applied to the
        output, modelling the reduced-precision hardware datapath.
    """

    def __init__(self, modulation, snr_db=None, scaled=False, output_format=None):
        if isinstance(modulation, str):
            modulation = MODULATIONS[modulation]
        self.modulation = modulation
        self.snr_db = snr_db
        self.scaled = scaled
        self.output_format = output_format
        if scaled and snr_db is None:
            raise ValueError("a scaled demapper needs an SNR to scale by")
        self.i_bits, self.q_bits = _axis_bits(modulation)

    @property
    def llr_scale(self):
        """The ``Es/N0 * S_modulation`` factor applied in scaled mode."""
        if not self.scaled:
            return 1.0
        snr_linear = 10.0 ** (self.snr_db / 10.0)
        return snr_linear * MODULATION_SCALE[self.modulation.name]

    def demap(self, symbols, weights=None):
        """Demap complex symbols to soft values.

        Parameters
        ----------
        symbols:
            Equalised constellation symbols (complex array).  A 1-D array
            demaps one packet; a 2-D ``(packets, symbols)`` array demaps a
            whole batch in the same vectorised pass and returns
            ``(packets, soft_values)``.
        weights:
            Optional per-symbol channel-state weights (for example the
            squared fading amplitude), matching ``symbols`` in shape.  Each
            symbol's soft values are multiplied by its weight, which is how
            a receiver with channel state information de-emphasises faded
            subcarriers.

        Returns
        -------
        numpy.ndarray
            Soft values in transmit bit order, ``bits_per_symbol`` per
            symbol, positive meaning "bit 1".
        """
        symbols = np.asarray(symbols, dtype=np.complex128)
        scale_to_levels = 1.0 / self.modulation.normalization
        real = symbols.real * scale_to_levels
        imag = symbols.imag * scale_to_levels

        i_soft = axis_soft_values(real, self.i_bits)
        if self.q_bits:
            q_soft = axis_soft_values(imag, self.q_bits)
            soft = np.concatenate([i_soft, q_soft], axis=-1)
        else:
            soft = i_soft

        soft = soft * self.llr_scale
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            soft = soft * weights[..., np.newaxis]
        soft = soft.reshape(symbols.shape[:-1] + (-1,)) if symbols.ndim > 1 else soft.reshape(-1)
        if self.output_format is not None:
            soft = self.output_format.quantize(soft)
        return soft

    def __repr__(self):
        mode = "scaled" if self.scaled else "hardware"
        return "Demapper(%s, %s)" % (self.modulation.name, mode)
