"""Soft demapper based on the Tosato/Bisaglia simplified expressions.

The demapper converts each received subcarrier symbol back into one soft
value (an LLR, equation 2 in the paper) per coded bit.  Following Tosato and
Bisaglia the per-axis expressions reduce to piecewise-linear functions of the
received coordinate that need no multiplications or divisions:

=========  ============================================
bit        soft value (y expressed in integer level units)
=========  ============================================
sign bit   ``y``
16-QAM b1  ``2 - |y|``
64-QAM b1  ``4 - |y|``
64-QAM b2  ``2 - |4 - |y||``
=========  ============================================

The *true* LLR additionally carries the factor ``Es/N0 * S_modulation``
(equation 3).  The paper's hardware demapper drops that factor because hard
decisions only depend on relative ordering, which is exactly what lets the
decoder datapath shrink to 3-8 bits -- but it is also why the BER estimator
downstream must reintroduce the scaling (equation 5).  The ``scaled``
parameter selects between the two behaviours, and ``output_format`` applies
the hardware quantisation.
"""

import numpy as np

from repro.phy.dtype import dtype_policy
from repro.phy.mapper import _axis_bits
from repro.phy.params import BPSK, MODULATIONS, QAM16, QAM64, QPSK

#: Per-modulation scaling constant ``S_modulation`` relating the unscaled
#: distance metric to the true LLR under the max-log approximation: the LLR
#: of the sign bit is ``4 * Es/N0 * K_mod^2 * (levels distance)``; expressing
#: the metric in integer level units folds ``K_mod^2`` into this constant.
MODULATION_SCALE = {
    "BPSK": 4.0,
    "QPSK": 4.0 / 2.0,
    "QAM16": 4.0 / 10.0,
    "QAM64": 4.0 / 42.0,
}


def axis_soft_values(y, axis_bits, dtype=np.float64):
    """Simplified per-axis soft values for one Gray-coded axis.

    Parameters
    ----------
    y:
        Received coordinate(s) in integer level units (i.e. already divided
        by the constellation normalisation).
    axis_bits:
        Number of bits carried by this axis (1, 2 or 3).
    dtype:
        Working float dtype (see :mod:`repro.phy.dtype`).

    Returns
    -------
    numpy.ndarray
        Array of shape ``y.shape + (axis_bits,)`` with positive values
        meaning "bit = 1 more likely".
    """
    y = np.asarray(y, dtype=dtype)
    out = np.empty(y.shape + (axis_bits,), dtype=dtype)
    out[..., 0] = y
    if axis_bits >= 2:
        distance = 4.0 if axis_bits == 3 else 2.0
        out[..., 1] = distance - np.abs(y)
    if axis_bits >= 3:
        out[..., 2] = 2.0 - np.abs(4.0 - np.abs(y))
    return out


#: Default resolution of the precomputed soft-value tables: bin width
#: ``2 * LLR_TABLE_LIMIT / LLR_TABLE_BINS`` = 1/128 of a level unit, which
#: keeps the table-lookup error two orders of magnitude below the noise
#: floor of any operating point the simulator visits.
LLR_TABLE_BINS = 8192
#: Received coordinates are clamped to ``[-limit, limit]`` level units —
#: wide enough for the outer 64-QAM levels (+/-7) plus several noise
#: standard deviations at the lowest simulated SNRs; values beyond it
#: saturate, which only compresses already-huge confidences.
LLR_TABLE_LIMIT = 32.0


class LlrTable:
    """A precomputed per-constellation-axis soft-value lookup table.

    The Tosato/Bisaglia expressions are piecewise linear in the received
    coordinate, so for the approximate float32 fast path they are
    precomputed once per constellation axis onto a uniform grid: a demap
    becomes one fused multiply-add (coordinate to bin index) plus one
    gather, replacing the per-symbol ``abs``/subtract cascade.  The table
    is keyed by the constellation axis (which the PHY rate selects) with
    the received coordinate binned; the per-operating-point noise scaling
    (``Es/N0 * S_modulation``) stays *outside* the table — it is applied
    as the usual post-lookup ``llr_scale`` multiply, so one table serves
    every noise bin.

    The lookup is approximate (nearest bin centre, clamped to
    ``[-limit, limit]``), which is why only the non-exact
    :class:`~repro.phy.dtype.DTypePolicy` uses it; the float64 reference
    path keeps the closed form bit-for-bit.
    """

    def __init__(self, axis_bits, bins=LLR_TABLE_BINS, limit=LLR_TABLE_LIMIT,
                 dtype=np.float32):
        self.axis_bits = int(axis_bits)
        self.bins = int(bins)
        self.limit = float(limit)
        step = (2.0 * self.limit) / self.bins
        centers = (np.arange(self.bins) + 0.5) * step - self.limit
        #: ``(bins, axis_bits)`` soft values at each bin centre.
        self.values = axis_soft_values(centers, self.axis_bits, dtype=dtype)
        self._index_scale = self.bins / (2.0 * self.limit)

    def lookup(self, y):
        """Soft values for coordinates ``y``: ``y.shape + (axis_bits,)``."""
        index = (np.asarray(y) + self.limit) * self._index_scale
        # Truncation equals floor for the in-range (non-negative) indices;
        # out-of-range coordinates clamp to the saturated end bins.
        index = np.clip(index.astype(np.int64), 0, self.bins - 1)
        return self.values[index]


_LLR_TABLE_CACHE = {}


def llr_table(axis_bits, bins=LLR_TABLE_BINS, limit=LLR_TABLE_LIMIT,
              dtype=np.float32):
    """The shared (process-wide) :class:`LlrTable` for one axis shape."""
    key = (int(axis_bits), int(bins), float(limit), np.dtype(dtype).str)
    table = _LLR_TABLE_CACHE.get(key)
    if table is None:
        table = _LLR_TABLE_CACHE[key] = LlrTable(axis_bits, bins, limit,
                                                 dtype)
    return table


class Demapper:
    """Converts equalised subcarrier symbols into per-bit soft values.

    Parameters
    ----------
    modulation:
        Constellation of the received symbols (object or name).
    snr_db:
        Signal-to-noise ratio assumed when ``scaled`` is true.  Ignored in
        hardware mode.
    scaled:
        When ``True`` the output is the true LLR of equation 3 (including
        the ``Es/N0`` and ``S_modulation`` factors).  When ``False``
        (hardware mode, the paper's implementation) only the distance term
        is produced.
    output_format:
        Optional :class:`~repro.fixedpoint.FixedPointFormat` applied to the
        output, modelling the reduced-precision hardware datapath.
    dtype:
        Working-precision policy (see :mod:`repro.phy.dtype`).  The exact
        float64 default computes the closed-form expressions; the float32
        policy uses the precomputed :class:`LlrTable` fast path.
    use_lut:
        Force the lookup-table path on or off; ``None`` (default) follows
        the policy (tables only when the policy is approximate, so the
        exact path stays bit-for-bit).
    """

    def __init__(self, modulation, snr_db=None, scaled=False, output_format=None,
                 dtype=None, use_lut=None):
        if isinstance(modulation, str):
            modulation = MODULATIONS[modulation]
        self.modulation = modulation
        self.snr_db = snr_db
        self.scaled = scaled
        self.output_format = output_format
        if scaled and snr_db is None:
            raise ValueError("a scaled demapper needs an SNR to scale by")
        self.i_bits, self.q_bits = _axis_bits(modulation)
        self.dtype_policy = dtype_policy(dtype)
        self.use_lut = (not self.dtype_policy.exact if use_lut is None
                        else bool(use_lut))

    @property
    def llr_scale(self):
        """The ``Es/N0 * S_modulation`` factor applied in scaled mode."""
        if not self.scaled:
            return 1.0
        snr_linear = 10.0 ** (self.snr_db / 10.0)
        return snr_linear * MODULATION_SCALE[self.modulation.name]

    def _axis_soft(self, y, axis_bits):
        """Per-axis soft values: LUT fast path or exact closed form.

        The table only pays off when the closed form actually computes
        something — a 1-bit axis is the identity, so it always uses the
        direct path.
        """
        if self.use_lut and axis_bits >= 2:
            return llr_table(axis_bits,
                             dtype=self.dtype_policy.float_dtype).lookup(y)
        return axis_soft_values(y, axis_bits,
                                dtype=self.dtype_policy.float_dtype)

    def demap(self, symbols, weights=None, llr_scale=None):
        """Demap complex symbols to soft values.

        Parameters
        ----------
        symbols:
            Equalised constellation symbols (complex array).  A 1-D array
            demaps one packet; a 2-D ``(packets, symbols)`` array demaps a
            whole batch in the same vectorised pass and returns
            ``(packets, soft_values)``.
        weights:
            Optional per-symbol channel-state weights (for example the
            squared fading amplitude), matching ``symbols`` in shape.  Each
            symbol's soft values are multiplied by its weight, which is how
            a receiver with channel state information de-emphasises faded
            subcarriers.
        llr_scale:
            Optional override of the demapper's own :attr:`llr_scale` —
            a scalar, or for a 2-D batch a ``(packets,)`` array applying a
            different ``Es/N0 * S_modulation`` factor per packet.  This is
            how a *fused* batch stacks operating points at different SNRs
            through one scaled demap without one demapper per point.

        Returns
        -------
        numpy.ndarray
            Soft values in transmit bit order, ``bits_per_symbol`` per
            symbol, positive meaning "bit 1".
        """
        symbols = np.asarray(symbols, dtype=self.dtype_policy.complex_dtype)
        scale_to_levels = 1.0 / self.modulation.normalization
        real = symbols.real * scale_to_levels
        imag = symbols.imag * scale_to_levels

        i_soft = self._axis_soft(real, self.i_bits)
        if self.q_bits:
            q_soft = self._axis_soft(imag, self.q_bits)
            soft = np.concatenate([i_soft, q_soft], axis=-1)
        else:
            soft = i_soft

        scale = self.llr_scale if llr_scale is None else llr_scale
        if np.ndim(scale):
            scale = np.asarray(scale, dtype=self.dtype_policy.float_dtype)
            if scale.shape[0] != symbols.shape[0] or symbols.ndim != 2:
                raise ValueError(
                    "per-packet llr_scale needs a (packets,) array matching "
                    "a 2-D symbol batch; got %r for symbols %r"
                    % (scale.shape, symbols.shape))
            scale = scale[:, np.newaxis, np.newaxis]
        soft = soft * scale
        if weights is not None:
            weights = np.asarray(weights,
                                 dtype=self.dtype_policy.float_dtype)
            soft = soft * weights[..., np.newaxis]
        soft = soft.reshape(symbols.shape[:-1] + (-1,)) if symbols.ndim > 1 else soft.reshape(-1)
        if self.output_format is not None:
            soft = self.output_format.quantize(soft)
        return soft

    def __repr__(self):
        mode = "scaled" if self.scaled else "hardware"
        return "Demapper(%s, %s)" % (self.modulation.name, mode)
