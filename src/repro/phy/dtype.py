"""Numeric precision policy for the simulation chain.

Historically every stage of the chain pinned its own working precision
with scattered ``np.asarray(..., dtype=np.complex128)`` /
``np.float64`` coercions, which made a reduced-precision fast path
impossible: any float32 array entering the receiver was silently
up-cast on the next stage boundary.  :class:`DTypePolicy` centralises
the choice — one object, threaded through mapper, channel, receiver and
decoder, names the float and complex working dtypes for a whole
simulator.

Tolerance policy
----------------
``float64`` (the default)
    The *exact* reference path.  All results — fused or per-point,
    any batch split — are **bit-for-bit** identical to the seed
    implementation; every equality-based contract (the result store's
    seed-derivation dedup, service-vs-serial row equality) relies on
    this and is asserted by the test suite.

``float32``
    An opt-in fast path.  Soft values, path metrics and LLRs are
    computed in single precision (noise is still *drawn* in float64 so
    the random stream is invariant, then cast).  Decoded hard bits
    almost always agree with the float64 path, but sign flips on
    near-zero LLRs are possible, so float32 results are **approximate**:
    equivalence tests bound the disagreement instead of asserting
    equality, and stored results are namespace-versioned — a
    ``Scenario`` with ``dtype="float32"`` includes the dtype in its
    content hash, so float32 rows can never collide with (or be dedup-
    served in place of) exact float64 rows.  See
    :meth:`repro.analysis.scenario.Scenario.to_dict`.
"""

import numpy as np

__all__ = ["DTypePolicy", "FLOAT64", "FLOAT32", "dtype_policy"]


class DTypePolicy:
    """Working precision for one simulation chain.

    Attributes
    ----------
    name:
        ``"float64"`` or ``"float32"`` — the declarative token used in
        :class:`~repro.analysis.scenario.Scenario` and store hashing.
    float_dtype / complex_dtype:
        The numpy dtypes every stage coerces to (instead of hard-coded
        ``float64`` / ``complex128``).
    exact:
        True for the bit-for-bit reference policy (float64).  Stages use
        this to keep the default path byte-identical to the historical
        implementation while enabling cheaper arithmetic otherwise.
    """

    __slots__ = ("name", "float_dtype", "complex_dtype", "exact")

    def __init__(self, name, float_dtype, complex_dtype, exact):
        self.name = name
        self.float_dtype = np.dtype(float_dtype)
        self.complex_dtype = np.dtype(complex_dtype)
        self.exact = bool(exact)

    def __eq__(self, other):
        return isinstance(other, DTypePolicy) and self.name == other.name

    def __hash__(self):
        return hash((type(self).__name__, self.name))

    def __repr__(self):
        return "DTypePolicy(%r)" % (self.name,)


#: The exact (bit-for-bit) default policy.
FLOAT64 = DTypePolicy("float64", np.float64, np.complex128, exact=True)

#: The approximate single-precision fast path.
FLOAT32 = DTypePolicy("float32", np.float32, np.complex64, exact=False)

_POLICIES = {"float64": FLOAT64, "float32": FLOAT32}


def dtype_policy(spec=None):
    """Resolve a policy spec: ``None`` (default), a name, or a policy.

    Every precision-aware constructor accepts this shape, so a plain
    ``dtype="float32"`` string flows from :class:`Scenario` params all
    the way into the BCJR recursions.
    """
    if spec is None:
        return FLOAT64
    if isinstance(spec, DTypePolicy):
        return spec
    try:
        return _POLICIES[str(spec)]
    except KeyError:
        raise ValueError(
            "unknown dtype policy %r (use %s)"
            % (spec, " or ".join(sorted(_POLICIES)))) from None
