"""Sliding-window max-log BCJR (SW-BCJR) decoder.

The paper's BCJR pipeline (Figure 4) avoids buffering an entire frame by
operating on sliding blocks of reversed data: for every block the backward
path metrics are computed in isolation, seeded by a *provisional* backward
recursion over the following block that starts from an "uncertain" (uniform)
state.  The forward recursion runs continuously across block boundaries.
The per-bit LLR is the difference between the best combined
(alpha + branch + beta) metric over transitions labelled 1 and the best over
transitions labelled 0 -- the max-log approximation of equation 1.

The decoder shares the BMU and PMU kernels with Viterbi and SOVA and, like
them, operates on a batch of packets simultaneously.
"""

import numpy as np

from repro.phy.decoder_base import ConvolutionalDecoder, DecodeResult
from repro.phy.trellis import (
    BranchMetricUnit,
    NEGATIVE_INFINITY_METRIC,
    PathMetricUnit,
    Trellis,
    reshape_soft_input,
)


class BcjrDecoder(ConvolutionalDecoder):
    """Sliding-window max-log BCJR with provisional backward metrics.

    Parameters
    ----------
    trellis:
        Shared trellis; the 802.11 mother code by default.
    block_length:
        Sliding-window block size ``n``.  The paper finds the approximation
        reasonable for ``n >= 32`` and evaluates ``n = 64``.
    """

    name = "bcjr"
    produces_soft_output = True

    def __init__(self, trellis=None, block_length=64):
        if block_length < 1:
            raise ValueError("block length must be positive")
        self.trellis = trellis if trellis is not None else Trellis()
        self.block_length = int(block_length)
        self.bmu = BranchMetricUnit(self.trellis)
        self.pmu = PathMetricUnit(self.trellis)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _terminal_beta(self, batch):
        """Backward metrics at the end of a terminated packet (state 0)."""
        beta = np.full(
            (batch, self.trellis.num_states), NEGATIVE_INFINITY_METRIC, dtype=np.float64
        )
        beta[:, 0] = 0.0
        return beta

    def _provisional_beta(self, soft, start, stop, batch):
        """Backward recursion over ``[start, stop)`` from an uncertain state."""
        beta = np.zeros((batch, self.trellis.num_states), dtype=np.float64)
        for k in range(stop - 1, start - 1, -1):
            branch = self.bmu.compute(soft[:, k, :])
            beta = self.pmu.normalize(self.pmu.backward_step(beta, branch))
        return beta

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(self, soft, num_data_bits):
        soft = reshape_soft_input(soft, self.trellis.n_out)
        batch, steps, _ = soft.shape
        self._check_length(steps, num_data_bits, self.trellis.code.memory)
        trellis = self.trellis
        n = self.block_length

        llr = np.empty((batch, steps), dtype=np.float64)
        alpha_in = self.pmu.initial_metrics(batch, known_start=True)

        for t0 in range(0, steps, n):
            t1 = min(t0 + n, steps)
            block_len = t1 - t0
            branch_block = self.bmu.compute_all(soft[:, t0:t1, :])

            # Forward metrics entering each step of the block.
            alpha_store = np.empty(
                (block_len, batch, trellis.num_states), dtype=np.float64
            )
            alpha = alpha_in
            for k in range(block_len):
                alpha_store[k] = alpha
                alpha, _, _, _ = self.pmu.forward_step(alpha, branch_block[:, k])
                alpha = self.pmu.normalize(alpha)
            alpha_in = alpha

            # Backward metrics at the end of the block: exact for the final
            # block of a terminated packet, provisional (seeded from an
            # uncertain state over the next block) otherwise.
            if t1 == steps:
                beta = self._terminal_beta(batch)
            else:
                beta = self._provisional_beta(soft, t1, min(t1 + n, steps), batch)

            # Backward sweep through the block, emitting LLRs as we go.
            for k in range(block_len - 1, -1, -1):
                branch = branch_block[:, k]  # (batch, states, 2)
                combined = (
                    alpha_store[k][:, :, np.newaxis]
                    + branch
                    + beta[:, trellis.next_state]
                )
                best_one = np.max(combined[:, :, 1], axis=1)
                best_zero = np.max(combined[:, :, 0], axis=1)
                llr[:, t0 + k] = best_one - best_zero
                beta = self.pmu.normalize(self.pmu.backward_step(beta, branch))

        bits = (llr > 0).astype(np.uint8)
        return DecodeResult(bits=bits[:, :num_data_bits], llr=llr[:, :num_data_bits])
