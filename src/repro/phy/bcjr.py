"""Sliding-window max-log BCJR (SW-BCJR) decoder.

The paper's BCJR pipeline (Figure 4) avoids buffering an entire frame by
operating on sliding blocks of reversed data: for every block the backward
path metrics are computed in isolation, seeded by a *provisional* backward
recursion over the following block that starts from an "uncertain" (uniform)
state.  The forward recursion runs continuously across block boundaries.
The per-bit LLR is the difference between the best combined
(alpha + branch + beta) metric over transitions labelled 1 and the best over
transitions labelled 0 -- the max-log approximation of equation 1.

The decoder shares the BMU and PMU kernels with Viterbi and SOVA and, like
them, operates on a batch of packets simultaneously.

Fused implementation
--------------------
The Python reproduction exploits a property the hardware pipeline cannot:
*only the forward (alpha) recursion is sequential across the whole frame*.
Every block's backward work depends only on its own seed, so the sweeps are
stacked along the batch axis and executed together:

* Branch metrics for the whole frame are computed once, in compressed
  form (:meth:`~repro.phy.trellis.BranchMetricUnit.compute_compressed`:
  one value per coded-bit pattern instead of per transition), and shared
  by the forward, provisional-beta and LLR passes, which expand them on
  demand with tiny index-table gathers.
* All provisional beta recursions (one per block, over the *next* block)
  run in parallel as a single ``(batch * (blocks - 1), ...)`` recursion of
  ``block_length`` steps.
* The backward LLR sweep likewise runs over every block at once, and the
  beta update and the LLR combine are fused: each step materialises one
  shared ``branch + beta`` tensor, whose pairwise max advances beta and
  which is stored so that one vectorised ``alpha + shared`` pass at the end
  emits every LLR of the frame.

Peak memory is a few ``(batch, steps, num_states, 2)`` float64 tensors
(about 56 MB for a batch of 32 packets of 1704 bits); choose the link
simulator's ``batch_size`` accordingly.
"""

import numpy as np

from repro.phy.decoder_base import ConvolutionalDecoder, DecodeResult
from repro.phy.trellis import (
    BranchMetricUnit,
    NEGATIVE_INFINITY_METRIC,
    PathMetricUnit,
    Trellis,
    reshape_soft_input,
)


class BcjrDecoder(ConvolutionalDecoder):
    """Sliding-window max-log BCJR with provisional backward metrics.

    Parameters
    ----------
    trellis:
        Shared trellis; the 802.11 mother code by default.
    block_length:
        Sliding-window block size ``n``.  The paper finds the approximation
        reasonable for ``n >= 32`` and evaluates ``n = 64``.
    """

    name = "bcjr"
    produces_soft_output = True

    def __init__(self, trellis=None, block_length=64):
        if block_length < 1:
            raise ValueError("block length must be positive")
        self.trellis = trellis if trellis is not None else Trellis()
        self.block_length = int(block_length)
        self.bmu = BranchMetricUnit(self.trellis)
        self.pmu = PathMetricUnit(self.trellis)
        # Edge-pattern index table in (edge, j, d) layout for destination
        # state s = 2j + d: gathering the compressed branch values through
        # it yields forward candidates whose edge axis leads, so the ACS
        # max is a pairwise maximum of two contiguous views and the
        # predecessor "gather" is just a reshape of the metric row
        # (prev_state[s, e] = e * num_states/2 + j).
        half = self.trellis.num_states // 2
        self._edge_code_fwd = np.ascontiguousarray(
            self.trellis.edge_code.reshape(half, 2, 2).transpose(2, 0, 1)
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _terminal_beta(self, batch):
        """Backward metrics at the end of a terminated packet (state 0)."""
        beta = np.full(
            (batch, self.trellis.num_states), NEGATIVE_INFINITY_METRIC, dtype=np.float64
        )
        beta[:, 0] = 0.0
        return beta

    def _provisional_beta(self, val_windows, pad):
        """Backward recursions over stacked blocks from an uncertain state.

        Parameters
        ----------
        val_windows:
            ``(windows, block_length, batch, 2**n_out)`` compressed branch
            metrics of blocks ``1 .. num_blocks - 1`` -- a view into the
            sweep's frame-wide
            :meth:`~repro.phy.trellis.BranchMetricUnit.compute_compressed`
            tensor rather than per-step BMU calls, so no extra correlation
            pass is needed.  The final window is front-padded by ``pad``
            slots.
        pad:
            Number of padded slots at the head of the final window.  The
            final window's seed is snapshotted when the recursion reaches
            its first real step; the remaining (padded) steps only touch
            the other windows' already-irrelevant tails.

        Returns
        -------
        numpy.ndarray
            ``(windows, batch, num_states)`` provisional beta at each
            block's start -- the seed for the block *preceding* each
            window.
        """
        trellis = self.trellis
        pmu = self.pmu
        windows, length, batch, _ = val_windows.shape
        num_states = trellis.num_states
        half = num_states // 2
        code = trellis.branch_code
        beta = np.zeros((windows, batch, num_states), dtype=np.float64)
        final_seed = None
        for k in range(length - 1, -1, -1):
            # beta[next_state[s, e]] = beta[2j + e] for s = a*half + j: the
            # successor gather is a (half, 2) view of beta, broadcast over a.
            shared = val_windows[:, k][..., code].reshape(
                windows, batch, 2, half, 2
            ) + beta.reshape(windows, batch, 1, half, 2)
            beta = np.maximum(shared[..., 0], shared[..., 1]).reshape(
                windows, batch, num_states
            )
            if k % 16 == 0:
                beta = pmu.normalize(beta)
            if k == pad:
                final_seed = beta[-1].copy()
        seeds = beta
        seeds[-1] = final_seed
        return seeds

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(self, soft, num_data_bits):
        soft = reshape_soft_input(soft, self.trellis.n_out)
        batch, steps, _ = soft.shape
        self._check_length(steps, num_data_bits, self.trellis.code.memory)
        trellis = self.trellis
        pmu = self.pmu
        n = self.block_length
        num_states = trellis.num_states
        half = num_states // 2
        num_blocks = -(-steps // n)
        padded_steps = num_blocks * n
        pad = padded_steps - steps
        last_start = (num_blocks - 1) * n  # first real step of the final block

        # Forward (alpha) recursion -- the only truly sequential part.
        # The compressed branch metrics (2**n_out distinct values per step,
        # time-major so each step's slice is contiguous) are computed once;
        # each step expands them into predecessor-edge layout with one tiny
        # gather, then does a broadcast add and a pairwise max.  Metrics
        # are renormalised every few steps instead of every step: the drift
        # is bounded by 16x the largest branch metric, far inside double
        # precision, and the LLR difference is invariant to the per-row
        # offset.  The store is laid out time-major in padded-window slots
        # ((num_blocks, block_length) per packet) so every write is
        # contiguous and the backward sweep below can view it as stacked
        # blocks without copying; padded slots are never read.
        vals = self.bmu.compute_compressed(soft, time_major=True)
        edge_code_fwd = self._edge_code_fwd
        alpha_store = np.empty((padded_steps, batch, num_states), dtype=np.float64)
        alpha = pmu.initial_metrics(batch, known_start=True)
        offset = 0
        for k in range(steps):
            if k == last_start:
                offset = pad
            alpha_store[k + offset] = alpha
            # Metrics-only ACS, no survivor bookkeeping: the trellis is a
            # shift register (prev_state[s, e] = e*half + s//2, see
            # Trellis.next_state), so the predecessor "gather" is a
            # reshape of the metric row and the edge-major index table
            # makes the select a pairwise max of two contiguous views.
            candidates = alpha.reshape(batch, 2, half, 1) + vals[k][:, edge_code_fwd]
            alpha = np.maximum(candidates[:, 0], candidates[:, 1]).reshape(
                batch, num_states
            )
            if k % 16 == 15:
                alpha = pmu.normalize(alpha)
        if pad:
            # Slots [last_start, last_start + pad) hold the final block's
            # front padding; zero them so the sweep's discarded LLR lanes
            # read defined values instead of np.empty garbage.
            alpha_store[last_start : last_start + pad] = 0.0

        # The same compressed metrics in sweep layout: the final block is
        # front-padded to a full window with zero (no-information) values,
        # so only junk (discarded below) is emitted in the padded slots.
        if pad:
            val_windows = np.zeros(
                (padded_steps,) + vals.shape[1:], dtype=np.float64
            )
            val_windows[:last_start] = vals[:last_start]
            val_windows[last_start + pad:] = vals[last_start:]
        else:
            val_windows = vals
        val_windows = val_windows.reshape(num_blocks, n, batch, -1)

        # Beta seed of every block: the final block is anchored by the
        # termination tail; block i < last is seeded by a provisional
        # recursion over block i+1.  All provisional recursions run at
        # once, stacked along the leading window axis, reusing views of
        # the sweep's compressed metrics.
        seeds = np.empty((num_blocks, batch, num_states), dtype=np.float64)
        seeds[-1] = self._terminal_beta(batch)
        if num_blocks > 1:
            seeds[:-1] = self._provisional_beta(val_windows[1:], pad)

        # Fused backward sweep over every block at once.  Each step forms
        # one shared (branch + beta) tensor that serves both consumers:
        # its pairwise max over edges is the beta update, and its
        # combination with the stored alphas emits the step's LLRs -- one
        # tensor, one pass, instead of an LLR pass plus a separate
        # backward-metric pass.  The state axis is viewed as (2, half) so
        # the successor gather and the per-label maxes run on contiguous
        # data (see Trellis.next_state).
        code = trellis.branch_code
        alpha_blocks = alpha_store.reshape(num_blocks, n, batch, num_states)
        llr_blocks = np.empty((num_blocks, n, batch), dtype=np.float64)
        beta = seeds
        for k in range(n - 1, -1, -1):
            shared = val_windows[:, k][..., code].reshape(
                num_blocks, batch, 2, half, 2
            ) + beta.reshape(num_blocks, batch, 1, half, 2)
            alpha_k = alpha_blocks[:, k].reshape(num_blocks, batch, 2, half)
            best_one = (
                (alpha_k + shared[..., 1])
                .reshape(num_blocks, batch, num_states)
                .max(axis=2)
            )
            best_zero = (
                (alpha_k + shared[..., 0])
                .reshape(num_blocks, batch, num_states)
                .max(axis=2)
            )
            llr_blocks[:, k] = best_one - best_zero
            beta = np.maximum(shared[..., 0], shared[..., 1]).reshape(
                num_blocks, batch, num_states
            )
            if k % 16 == 0:
                beta = pmu.normalize(beta)

        # Unstack the blocks and drop the padded slots of the final block.
        llr_padded = llr_blocks.reshape(padded_steps, batch).T
        if pad:
            llr = np.concatenate(
                [llr_padded[:, :last_start], llr_padded[:, last_start + pad:]],
                axis=1,
            )
        else:
            llr = np.ascontiguousarray(llr_padded)

        bits = (llr > 0).astype(np.uint8)
        return DecodeResult(bits=bits[:, :num_data_bits], llr=llr[:, :num_data_bits])
