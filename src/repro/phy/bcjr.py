"""Sliding-window max-log BCJR (SW-BCJR) decoder.

The paper's BCJR pipeline (Figure 4) avoids buffering an entire frame by
operating on sliding blocks of reversed data: for every block the backward
path metrics are computed in isolation, seeded by a *provisional* backward
recursion over the following block that starts from an "uncertain" (uniform)
state.  The forward recursion runs continuously across block boundaries.
The per-bit LLR is the difference between the best combined
(alpha + branch + beta) metric over transitions labelled 1 and the best over
transitions labelled 0 -- the max-log approximation of equation 1.

The decoder shares the BMU and PMU kernels with Viterbi and SOVA and, like
them, operates on a batch of packets simultaneously.

Fused implementation
--------------------
The Python reproduction exploits a property the hardware pipeline cannot:
*only the forward (alpha) recursion is sequential across the whole frame*.
Every block's backward work depends only on its own seed, so the sweeps are
stacked along the batch axis and executed together:

* Branch metrics for the whole frame are computed once, in compressed
  form (:meth:`~repro.phy.trellis.BranchMetricUnit.compute_compressed`:
  one value per coded-bit pattern instead of per transition), and shared
  by the forward, provisional-beta and LLR passes, which expand them on
  demand with tiny index-table gathers.
* All provisional beta recursions (one per block, over the *next* block)
  run in parallel as a single ``(batch * (blocks - 1), ...)`` recursion of
  ``block_length`` steps.
* The backward LLR sweep likewise runs over every block at once, and the
  beta update and the LLR combine are fused: each step materialises one
  shared ``branch + beta`` tensor, whose pairwise max advances beta and
  which is stored so that one vectorised ``alpha + shared`` pass at the end
  emits every LLR of the frame.

Peak memory is a few ``(batch, steps, num_states, 2)`` tensors in the
decoder's working precision (about 56 MB for a float64 batch of 32 packets
of 1704 bits, half that in float32); choose the link simulator's
``batch_size`` accordingly.

The recursions run in the precision named by the decoder's
:class:`~repro.phy.dtype.DTypePolicy`: float64 is the exact reference
path, float32 an opt-in fast path whose LLRs may differ in the last bits
(see :mod:`repro.phy.dtype` for the tolerance policy).
"""

import time

import numpy as np

from repro.obs.phases import get_phase_hook
from repro.phy.decoder_base import ConvolutionalDecoder, DecodeResult
from repro.phy.dtype import dtype_policy
from repro.phy.trellis import (
    BranchMetricUnit,
    NEGATIVE_INFINITY_METRIC,
    PathMetricUnit,
    Trellis,
    reshape_soft_input,
)


class BcjrDecoder(ConvolutionalDecoder):
    """Sliding-window max-log BCJR with provisional backward metrics.

    Parameters
    ----------
    trellis:
        Shared trellis; the 802.11 mother code by default.
    block_length:
        Sliding-window block size ``n``.  The paper finds the approximation
        reasonable for ``n >= 32`` and evaluates ``n = 64``.
    dtype:
        Working-precision policy (``None``/``"float64"``/``"float32"`` or a
        :class:`~repro.phy.dtype.DTypePolicy`).
    """

    name = "bcjr"
    produces_soft_output = True
    supports_dtype = True

    def __init__(self, trellis=None, block_length=64, dtype=None):
        if block_length < 1:
            raise ValueError("block length must be positive")
        self.trellis = trellis if trellis is not None else Trellis()
        self.dtype_policy = dtype_policy(dtype)
        self._dtype = self.dtype_policy.float_dtype
        self.block_length = int(block_length)
        self.bmu = BranchMetricUnit(self.trellis)
        self.pmu = PathMetricUnit(self.trellis)
        # Edge-pattern index table in (d, e, j) layout for destination
        # state s = 2j + d and predecessor p = e * num_states/2 + j (see
        # Trellis.next_state): the forward loop splits the ACS by
        # destination bit d, so every add/max in the hot loop runs on
        # contiguous (batch, 2, half) blocks instead of broadcasting over
        # a size-1 trailing axis (which numpy executes an element at a
        # time — measured several times slower than the contiguous
        # spelling).
        half = self.trellis.num_states // 2
        self._edge_code_fwd_d = np.ascontiguousarray(
            self.trellis.edge_code.reshape(half, 2, 2).transpose(1, 2, 0)
        )
        # One-hot expansion of the (state, input) -> pattern table: row r
        # of ``vals @ _pattern_onehot`` is exactly ``vals[r, branch_code]``
        # flattened, because each column holds a single 1.  Each output
        # element is one exact product plus exact zeros, so the BLAS
        # spelling is bit-for-bit the fancy-index gather — but it writes
        # straight into a caller-owned buffer, which lets the backward
        # sweeps run without per-step tensor allocations.
        num_states = self.trellis.num_states
        self._pattern_onehot = np.zeros(
            (1 << self.trellis.n_out, 2 * num_states), dtype=self._dtype
        )
        self._pattern_onehot[
            self.trellis.branch_code.ravel(), np.arange(2 * num_states)
        ] = 1.0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _terminal_beta(self, batch):
        """Backward metrics at the end of a terminated packet (state 0)."""
        beta = np.full(
            (batch, self.trellis.num_states), NEGATIVE_INFINITY_METRIC,
            dtype=self._dtype
        )
        beta[:, 0] = 0.0
        return beta

    def _provisional_beta(self, val_windows, pad):
        """Backward recursions over stacked blocks from an uncertain state.

        Parameters
        ----------
        val_windows:
            ``(windows, block_length, batch, 2**n_out)`` compressed branch
            metrics of blocks ``1 .. num_blocks - 1`` -- a view into the
            sweep's frame-wide
            :meth:`~repro.phy.trellis.BranchMetricUnit.compute_compressed`
            tensor rather than per-step BMU calls, so no extra correlation
            pass is needed.  The final window is front-padded by ``pad``
            slots.
        pad:
            Number of padded slots at the head of the final window.  The
            final window's seed is snapshotted when the recursion reaches
            its first real step; the remaining (padded) steps only touch
            the other windows' already-irrelevant tails.

        Returns
        -------
        numpy.ndarray
            ``(windows, batch, num_states)`` provisional beta at each
            block's start -- the seed for the block *preceding* each
            window.
        """
        trellis = self.trellis
        windows, length, batch, num_vals = val_windows.shape
        num_states = trellis.num_states
        half = num_states // 2
        rows = windows * batch
        onehot = self._pattern_onehot
        beta = np.zeros((windows, batch, num_states), dtype=self._dtype)
        beta_sel = beta.reshape(windows, batch, 2, half)
        # All step tensors live in preallocated buffers: the gather runs
        # as a one-hot matmul (bit-identical, see _pattern_onehot) and
        # every add/max writes with ``out=`` — on this memory-bound sweep
        # the per-step ~MB temporaries otherwise dominate the cost.
        vals_step = np.empty((rows, num_vals), dtype=self._dtype)
        shared = np.empty((windows, batch, 2, half, 2), dtype=self._dtype)
        final_seed = None
        for k in range(length - 1, -1, -1):
            np.copyto(vals_step.reshape(windows, batch, num_vals),
                      val_windows[:, k])
            np.matmul(vals_step, onehot,
                      out=shared.reshape(rows, 2 * num_states))
            # beta[next_state[s, e]] = beta[2j + e] for s = a*half + j: the
            # successor gather is a (half, 2) view of beta, broadcast over
            # a; beta is only read before the select overwrites it.
            np.add(shared, beta.reshape(windows, batch, 1, half, 2),
                   out=shared)
            np.maximum(shared[..., 0], shared[..., 1], out=beta_sel)
            if k % 16 == 0:
                np.subtract(beta, beta.max(axis=-1, keepdims=True), out=beta)
            if k == pad:
                final_seed = beta[-1].copy()
        seeds = beta
        seeds[-1] = final_seed
        return seeds

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(self, soft, num_data_bits):
        """Decode a batch (or stack of batches) of packets.

        Besides the base-class 1-D / ``(batch, length)`` shapes, ``soft``
        may be a 3-D ``(points, packets, length)`` stack of operating
        points: every recursion is row-independent along the batch axis,
        so the stack is decoded as one fused ``(points * packets)`` batch
        — bit-for-bit what per-point calls would produce — and the result
        arrays keep the ``(points, packets, ...)`` leading axes.
        """
        soft = np.asarray(soft)
        stack_shape = None
        if soft.ndim == 3:
            stack_shape = soft.shape[:2]
            soft = soft.reshape(-1, soft.shape[-1])
        soft = reshape_soft_input(soft, self.trellis.n_out, dtype=self._dtype)
        batch, steps, _ = soft.shape
        self._check_length(steps, num_data_bits, self.trellis.code.memory)
        trellis = self.trellis
        pmu = self.pmu
        n = self.block_length
        num_states = trellis.num_states
        half = num_states // 2
        num_blocks = -(-steps // n)
        padded_steps = num_blocks * n
        pad = padded_steps - steps
        last_start = (num_blocks - 1) * n  # first real step of the final block

        # Forward (alpha) recursion -- the only truly sequential part.
        # The compressed branch metrics (2**n_out distinct values per step,
        # time-major so each step's slice is contiguous) are computed once;
        # each step expands them into predecessor-edge layout with one tiny
        # gather, then does a broadcast add and a pairwise max.  Metrics
        # are renormalised every few steps instead of every step: the drift
        # is bounded by 16x the largest branch metric, far inside double
        # precision, and the LLR difference is invariant to the per-row
        # offset.  The store is laid out time-major in padded-window slots
        # ((num_blocks, block_length) per packet) so every write is
        # contiguous and the backward sweep below can view it as stacked
        # blocks without copying; padded slots are never read.
        # Phase hooks time the decoder's three sweeps; they read the
        # clock only, so traced and untraced decodes are bit-identical.
        hook = get_phase_hook()
        if hook is not None:
            phase_ts = time.time()
            phase_t0 = time.perf_counter()
        vals = self.bmu.compute_compressed(soft, time_major=True,
                                           dtype=self._dtype)
        edge_code_fwd_d = self._edge_code_fwd_d
        alpha_store = np.empty((padded_steps, batch, num_states),
                               dtype=self._dtype)
        alpha = np.empty((batch, num_states), dtype=self._dtype)
        alpha[:] = pmu.initial_metrics(
            batch, known_start=True, dtype=self._dtype)
        # State-order views of the same buffer: predecessor p = e*half + j
        # and destination s = 2j + d are both pure reinterpretations of
        # the flat metric row (see Trellis.next_state).
        alpha_pred = alpha.reshape(batch, 2, half)   # [b, e, j]
        alpha_dest = alpha.reshape(batch, half, 2)   # [b, j, d]
        # The ~1700-step loop is dispatch-bound, so everything that can
        # leave it does: the branch-value expansion through the edge index
        # table runs as one chunked gather (bounding the expanded tensor to
        # a few MB instead of the whole frame), and the ACS is split by
        # destination bit d so every add and max runs over a contiguous
        # (batch, 2, half) block — no size-1 broadcast axis, which numpy
        # executes an element at a time.  Below ~16 packets the step
        # tensors are so small that the call count itself dominates, and
        # a two-call spelling (one broadcast add, one max writing through
        # a transposed view) measures faster despite its strided output;
        # past that the contiguous four-call spelling wins on bandwidth.
        # Each output metric is, either way, the max of the same two
        # (alpha + branch) sums as the scalar spelling, so the results
        # stay bit-for-bit identical.
        narrow = batch <= 16
        if narrow:
            candidates = np.empty((batch, 2, 2, half), dtype=self._dtype)
            alpha_dest_t = alpha_dest.transpose(0, 2, 1)  # [b, d, j]
        else:
            candidates = np.empty((2, batch, 2, half), dtype=self._dtype)
        gather_chunk = 128
        offset = 0
        for first in range(0, steps, gather_chunk):
            # (chunk, batch, 2(d), 2(e), half)
            expanded = vals[first:first + gather_chunk][:, :, edge_code_fwd_d]
            for i in range(expanded.shape[0]):
                k = first + i
                if k == last_start:
                    offset = pad
                alpha_store[k + offset] = alpha
                step_vals = expanded[i]
                if narrow:
                    np.add(alpha_pred[:, None], step_vals, out=candidates)
                    np.maximum(candidates[..., 0, :], candidates[..., 1, :],
                               out=alpha_dest_t)
                else:
                    np.add(alpha_pred, step_vals[:, 0], out=candidates[0])
                    np.add(alpha_pred, step_vals[:, 1], out=candidates[1])
                    np.maximum(candidates[0, :, 0], candidates[0, :, 1],
                               out=alpha_dest[:, :, 0])
                    np.maximum(candidates[1, :, 0], candidates[1, :, 1],
                               out=alpha_dest[:, :, 1])
                if k % 16 == 15:
                    alpha[:] = pmu.normalize(alpha)
        if pad:
            # Slots [last_start, last_start + pad) hold the final block's
            # front padding; zero them so the sweep's discarded LLR lanes
            # read defined values instead of np.empty garbage.
            alpha_store[last_start : last_start + pad] = 0.0
        if hook is not None:
            hook("bcjr.forward", phase_ts, time.perf_counter() - phase_t0,
                 {"packets": batch})
            phase_ts = time.time()
            phase_t0 = time.perf_counter()

        # The same compressed metrics in sweep layout: the final block is
        # front-padded to a full window with zero (no-information) values,
        # so only junk (discarded below) is emitted in the padded slots.
        if pad:
            val_windows = np.zeros(
                (padded_steps,) + vals.shape[1:], dtype=self._dtype
            )
            val_windows[:last_start] = vals[:last_start]
            val_windows[last_start + pad:] = vals[last_start:]
        else:
            val_windows = vals
        val_windows = val_windows.reshape(num_blocks, n, batch, -1)

        # Beta seed of every block: the final block is anchored by the
        # termination tail; block i < last is seeded by a provisional
        # recursion over block i+1.  All provisional recursions run at
        # once, stacked along the leading window axis, reusing views of
        # the sweep's compressed metrics.
        seeds = np.empty((num_blocks, batch, num_states), dtype=self._dtype)
        seeds[-1] = self._terminal_beta(batch)
        if num_blocks > 1:
            seeds[:-1] = self._provisional_beta(val_windows[1:], pad)
        if hook is not None:
            hook("bcjr.seed", phase_ts, time.perf_counter() - phase_t0,
                 {"packets": batch})
            phase_ts = time.time()
            phase_t0 = time.perf_counter()

        # Fused backward sweep over every block at once.  Each step forms
        # one shared (branch + beta) tensor that serves both consumers:
        # its pairwise max over edges is the beta update, and its
        # combination with the stored alphas emits the step's LLRs -- one
        # tensor, one pass, instead of an LLR pass plus a separate
        # backward-metric pass.  The state axis is viewed as (2, half) so
        # the successor gather and the per-label maxes run on contiguous
        # data (see Trellis.next_state).
        alpha_blocks = alpha_store.reshape(num_blocks, n, batch, num_states)
        llr_blocks = np.empty((num_blocks, n, batch), dtype=self._dtype)
        beta = seeds
        beta_sel = beta.reshape(num_blocks, batch, 2, half)
        # Preallocated step buffers, as in _provisional_beta: the one-hot
        # matmul gather and the ``out=`` adds/maxes keep this memory-bound
        # sweep free of per-step ~MB temporaries while producing the same
        # max of the same (alpha + branch + successor-beta) sums.
        rows = num_blocks * batch
        num_vals = val_windows.shape[-1]
        onehot = self._pattern_onehot
        vals_step = np.empty((rows, num_vals), dtype=self._dtype)
        shared = np.empty((num_blocks, batch, 2, half, 2), dtype=self._dtype)
        combined = np.empty((num_blocks, batch, 2, half), dtype=self._dtype)
        best_one = np.empty((num_blocks, batch), dtype=self._dtype)
        best_zero = np.empty_like(best_one)
        for k in range(n - 1, -1, -1):
            np.copyto(vals_step.reshape(num_blocks, batch, num_vals),
                      val_windows[:, k])
            np.matmul(vals_step, onehot,
                      out=shared.reshape(rows, 2 * num_states))
            np.add(shared, beta.reshape(num_blocks, batch, 1, half, 2),
                   out=shared)
            alpha_k = alpha_blocks[:, k].reshape(num_blocks, batch, 2, half)
            np.add(alpha_k, shared[..., 1], out=combined)
            combined.reshape(num_blocks, batch, num_states).max(
                axis=2, out=best_one)
            np.add(alpha_k, shared[..., 0], out=combined)
            combined.reshape(num_blocks, batch, num_states).max(
                axis=2, out=best_zero)
            np.subtract(best_one, best_zero, out=llr_blocks[:, k])
            np.maximum(shared[..., 0], shared[..., 1], out=beta_sel)
            if k % 16 == 0:
                np.subtract(beta, beta.max(axis=2, keepdims=True), out=beta)

        # Unstack the blocks and drop the padded slots of the final block.
        llr_padded = llr_blocks.reshape(padded_steps, batch).T
        if pad:
            llr = np.concatenate(
                [llr_padded[:, :last_start], llr_padded[:, last_start + pad:]],
                axis=1,
            )
        else:
            llr = np.ascontiguousarray(llr_padded)

        if hook is not None:
            hook("bcjr.backward", phase_ts, time.perf_counter() - phase_t0,
                 {"packets": batch})

        bits = (llr > 0).astype(np.uint8)
        bits, llr = bits[:, :num_data_bits], llr[:, :num_data_bits]
        if stack_shape is not None:
            bits = bits.reshape(stack_shape + (num_data_bits,))
            llr = llr.reshape(stack_shape + (num_data_bits,))
        return DecodeResult(bits=bits, llr=llr)
