"""802.11 data scrambler.

802.11a/g scrambles the payload with the length-127 sequence produced by the
polynomial x^7 + x^4 + 1 so that long runs of identical bits do not bias the
transmit spectrum.  Scrambling is an involution (XOR with a keystream), so
the same function descrambles at the receiver.

The 127-bit period of the generator depends only on the seed, so it is
computed once per seed and cached; scrambling a packet (or a whole
``(packets, bits)`` batch sharing one seed) is then a single vectorised XOR
against the tiled keystream.
"""

import functools

import numpy as np


@functools.lru_cache(maxsize=None)
def _scrambler_period(seed):
    """The full 127-bit keystream period for ``seed`` (cached per seed).

    The returned array is shared between callers and must not be mutated;
    :func:`scrambler_sequence` always hands out copies.
    """
    if not 1 <= seed <= 0x7F:
        raise ValueError("scrambler seed must be a non-zero 7-bit value")
    # The generator has period 127 for any non-zero seed, so one period is
    # computed bit-by-bit and then tiled to any requested length.
    state = [(seed >> i) & 1 for i in range(7)]  # state[0] = x^1 ... state[6] = x^7
    period = np.empty(127, dtype=np.uint8)
    for i in range(127):
        feedback = state[6] ^ state[3]  # x^7 XOR x^4
        period[i] = feedback
        state = [feedback] + state[:6]
    return period


def scrambler_sequence(length, seed=0x7F):
    """Return ``length`` bits of the 802.11 scrambler keystream.

    Parameters
    ----------
    length:
        Number of keystream bits to generate.
    seed:
        Initial 7-bit shift-register state; must be non-zero.  802.11
        transmitters pick a pseudo-random non-zero seed per frame; the
        default all-ones state matches the reference test vectors.
    """
    period = _scrambler_period(int(seed))
    if length <= 127:
        return period[:length].copy()
    repeats = int(np.ceil(length / 127))
    return np.tile(period, repeats)[:length]


def scramble(bits, seed=0x7F):
    """Scramble (or descramble) a bit array with the 802.11 keystream.

    Accepts a 1-D array (one packet) or a 2-D ``(packets, bits)`` array; in
    the batched case every row is XORed with the same keystream, matching a
    batch of packets scrambled with a shared seed.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    keystream = scrambler_sequence(bits.shape[-1], seed=seed)
    return np.bitwise_xor(bits, keystream)


#: Descrambling is the same XOR with the same keystream.
descramble = scramble


class Scrambler:
    """Object form of the scrambler, for use as a pipeline stage.

    The object keeps its seed so that a transmitter and receiver built from
    the same configuration agree on the keystream.
    """

    def __init__(self, seed=0x7F):
        if not 1 <= seed <= 0x7F:
            raise ValueError("scrambler seed must be a non-zero 7-bit value")
        self.seed = seed

    def __call__(self, bits):
        return scramble(bits, seed=self.seed)

    def __repr__(self):
        return "Scrambler(seed=0x%02X)" % self.seed
