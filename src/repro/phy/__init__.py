"""802.11a/g OFDM baseband: the Airblue-derived functional model.

The modules in this subpackage implement the transmit and receive pipelines
of Figure 1 in the paper:

transmit side
    scrambler -> convolutional encoder -> puncturer -> interleaver ->
    constellation mapper -> OFDM modulator (pilot insertion, IFFT, cyclic
    prefix)

receive side
    OFDM demodulator -> soft demapper (Tosato/Bisaglia approximation) ->
    deinterleaver -> depuncturer -> soft-decision decoder (hard Viterbi,
    SOVA or sliding-window BCJR) -> descrambler

Every block exists twice: as a pure numpy function (the fast "direct" path
used by the BER experiments, which need millions of bits) and as a
latency-insensitive module wrapper (see :mod:`repro.phy.pipelines`) so that
the same arithmetic runs inside the WiLIS framework for the co-simulation
experiments.  As in the paper, synchronisation and channel estimation are
not modelled.
"""

from repro.phy.params import (
    CodeRate,
    Modulation,
    PhyRate,
    RATE_TABLE,
    rate_by_mbps,
    rate_by_name,
)
from repro.phy.convolutional import ConvolutionalCode, IEEE80211_CODE
from repro.phy.trellis import Trellis
from repro.phy.transmitter import Transmitter, transmit
from repro.phy.receiver import Receiver, ReceiveResult, receive

__all__ = [
    "CodeRate",
    "ConvolutionalCode",
    "IEEE80211_CODE",
    "Modulation",
    "PhyRate",
    "RATE_TABLE",
    "ReceiveResult",
    "Receiver",
    "Transmitter",
    "Trellis",
    "rate_by_mbps",
    "rate_by_name",
    "receive",
    "transmit",
]
