"""Hard-output Viterbi decoder.

This is the baseline decoder of the paper's Figure 8: a forward
add-compare-select recursion over the 64-state trellis followed by a
traceback.  It shares the BMU and PMU kernels with SOVA and BCJR and is used
both as the reference for correctness tests and as the commodity baseline in
the area study.
"""

import numpy as np

from repro.phy.decoder_base import ConvolutionalDecoder, DecodeResult
from repro.phy.trellis import BranchMetricUnit, PathMetricUnit, Trellis, reshape_soft_input


class ViterbiDecoder(ConvolutionalDecoder):
    """Maximum-likelihood sequence decoder with hard outputs.

    Parameters
    ----------
    trellis:
        Shared :class:`~repro.phy.trellis.Trellis`; built from the 802.11
        mother code when omitted.
    traceback_length:
        Retained for architectural parity with the hardware implementation
        (it sizes the traceback memory in the area model); the functional
        decoder performs a full-packet traceback, which is the limiting
        behaviour of a sufficiently long window.
    """

    name = "viterbi"
    produces_soft_output = False

    def __init__(self, trellis=None, traceback_length=64):
        self.trellis = trellis if trellis is not None else Trellis()
        self.traceback_length = int(traceback_length)
        self.bmu = BranchMetricUnit(self.trellis)
        self.pmu = PathMetricUnit(self.trellis)

    def decode(self, soft, num_data_bits):
        soft = reshape_soft_input(soft, self.trellis.n_out)
        batch, steps, _ = soft.shape
        self._check_length(steps, num_data_bits, self.trellis.code.memory)

        metrics = self.pmu.initial_metrics(batch, known_start=True)
        survivor_state = np.empty((steps, batch, self.trellis.num_states), dtype=np.int8)
        survivor_input = np.empty((steps, batch, self.trellis.num_states), dtype=np.int8)

        for t in range(steps):
            branch = self.bmu.compute(soft[:, t, :])
            metrics, prev_state, prev_input, _ = self.pmu.forward_step(metrics, branch)
            metrics = self.pmu.normalize(metrics)
            survivor_state[t] = prev_state
            survivor_input[t] = prev_input

        # The packet is terminated, so the encoder ends in state 0.
        state = np.zeros(batch, dtype=np.int64)
        decisions = np.empty((batch, steps), dtype=np.uint8)
        rows = np.arange(batch)
        for t in range(steps - 1, -1, -1):
            decisions[:, t] = survivor_input[t, rows, state]
            state = survivor_state[t, rows, state].astype(np.int64)

        return DecodeResult(bits=decisions[:, :num_data_bits], llr=None)
