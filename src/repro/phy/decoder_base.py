"""Common interface and result type shared by the convolutional decoders.

Three decoders are provided, matching the paper's synthesis study:

* :class:`~repro.phy.viterbi.ViterbiDecoder` -- hard-output Viterbi, the
  baseline used in commodity 802.11a/g basebands.
* :class:`~repro.phy.sova.SovaDecoder` -- soft-output Viterbi (SOVA) with
  the two-traceback architecture of Figure 3.
* :class:`~repro.phy.bcjr.BcjrDecoder` -- sliding-window max-log BCJR
  (SW-BCJR) with the provisional backward recursion of Figure 4.

All decoders consume depunctured soft values (LLRs, positive = bit 1) for a
*terminated* packet -- ``num_data_bits`` information bits followed by the
encoder's tail -- and produce hard decisions plus, for the soft-output
decoders, a per-bit confidence (the "SoftPHY hint").
"""

import numpy as np


class DecodeResult:
    """Output of a convolutional decoder for a batch of packets.

    Attributes
    ----------
    bits:
        ``(batch, num_data_bits)`` hard decisions (0/1).
    llr:
        ``(batch, num_data_bits)`` signed log-likelihood ratios in the
        decoder's own scale (positive = bit 1); for the hard-output Viterbi
        decoder this is ``None``.
    """

    def __init__(self, bits, llr=None):
        self.bits = np.asarray(bits, dtype=np.uint8)
        if llr is None:
            self.llr = None
        else:
            llr = np.asarray(llr)
            # Preserve a reduced working precision (the float32 fast path)
            # but coerce anything non-float to the float64 default.
            if llr.dtype.kind != "f":
                llr = llr.astype(np.float64)
            self.llr = llr

    @property
    def hints(self):
        """Unsigned SoftPHY hints: the magnitude of the per-bit LLR.

        The paper's BER estimator keys its lookup tables on this magnitude
        (equation 4); ``None`` for hard-output decoding.
        """
        if self.llr is None:
            return None
        return np.abs(self.llr)

    @property
    def num_packets(self):
        return self.bits.shape[0]

    @property
    def num_bits(self):
        return self.bits.shape[1]

    def __repr__(self):
        return "DecodeResult(packets=%d, bits=%d, soft=%s)" % (
            self.num_packets,
            self.num_bits,
            self.llr is not None,
        )


class ConvolutionalDecoder:
    """Abstract base class for the three decoder implementations."""

    #: Short name used by the plug-n-play registry and reports.
    name = "decoder"

    #: Whether the decoder emits per-bit LLRs (SoftPHY support).
    produces_soft_output = False

    #: Whether the constructor accepts a ``dtype`` working-precision policy
    #: (see :mod:`repro.phy.dtype`).  Decoders without it always compute in
    #: float64; a float32 receiver simply hands them up-cast soft values.
    supports_dtype = False

    def decode(self, soft, num_data_bits):
        """Decode a batch of packets.

        Parameters
        ----------
        soft:
            Depunctured soft values.  Either a 1-D array for a single packet
            or a ``(batch, length)`` array; the length must equal
            ``2 * (num_data_bits + memory)`` for the rate-1/2 mother code.
        num_data_bits:
            Number of information bits per packet (tail excluded).

        Returns
        -------
        DecodeResult
        """
        raise NotImplementedError

    def _check_length(self, steps, num_data_bits, memory):
        expected = num_data_bits + memory
        if steps != expected:
            raise ValueError(
                "%s: soft input has %d trellis steps but %d were expected "
                "(%d data bits + %d tail bits)"
                % (type(self).__name__, steps, expected, num_data_bits, memory)
            )

    def __repr__(self):
        return "%s()" % type(self).__name__
