"""Per-packet BER: prediction, ground truth and packet error probability.

The per-packet BER (PBER) is the paper's unit of communication with the
upper layers: SoftRate keeps a packet's rate when its PBER falls inside a
target window and adjusts it otherwise, and the ARQ layer can use the PBER
to predict whether the packet contains any error at all.
"""

import numpy as np


def packet_ber_estimate(per_bit_estimates):
    """Predicted PBER: the arithmetic mean of the per-bit BER estimates.

    Accepts one packet (1-D) or a batch (2-D, one packet per row).
    """
    per_bit = np.asarray(per_bit_estimates, dtype=np.float64)
    return per_bit.mean(axis=-1)


def ground_truth_packet_ber(transmitted_bits, decoded_bits):
    """Actual PBER: the fraction of bits decoded incorrectly."""
    transmitted = np.asarray(transmitted_bits)
    decoded = np.asarray(decoded_bits)
    if transmitted.shape != decoded.shape:
        raise ValueError(
            "transmitted %r and decoded %r shapes differ"
            % (transmitted.shape, decoded.shape)
        )
    return np.mean(transmitted != decoded, axis=-1)


def packet_error_probability(per_bit_estimates):
    """Probability that the packet contains at least one bit error.

    Computed as ``1 - prod(1 - p_i)`` under the (optimistic) assumption of
    independent bit errors; evaluated in the log domain for stability.
    """
    per_bit = np.clip(np.asarray(per_bit_estimates, dtype=np.float64), 0.0, 1.0 - 1e-15)
    log_ok = np.log1p(-per_bit).sum(axis=-1)
    return 1.0 - np.exp(log_ok)


def expected_bit_errors(per_bit_estimates):
    """Expected number of erroneous bits in the packet."""
    return np.asarray(per_bit_estimates, dtype=np.float64).sum(axis=-1)
