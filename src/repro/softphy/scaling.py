"""The scaling factors relating hardware LLRs to true LLRs (equation 5).

The hardware demapper drops the ``Es/N0`` and ``S_modulation`` factors from
its soft outputs (they do not change the decoder's decisions), and the BCJR
and SOVA datapaths interpret their inputs on different scales.  The paper
models the combined effect as

    LLR_true = (Es/N0) * S_modulation * S_decoder * LLR_hardware

and observes (Figure 5) that the resulting BER-versus-hint curves stay
log-linear, with slopes that depend on SNR, modulation and decoder --
precisely because the relationship between hint and true LLR is a single
multiplicative factor.

``S_modulation`` comes from the demapper analysis (the same constant as
:data:`repro.phy.demapper.MODULATION_SCALE`); ``S_decoder`` is an empirical
property of the decoder implementation that the calibration module fits from
simulation, with the defaults below fitted from this repository's decoders.
"""

from repro.phy.demapper import MODULATION_SCALE
from repro.channel.awgn import snr_db_to_linear

#: Default decoder scaling factors ``S_decoder``.  SOVA reliabilities are
#: minimum metric margins along a single competing path, while max-log BCJR
#: aggregates over all paths; empirically the SOVA hints need a slightly
#: smaller scale to line up with equation 4.  These values are starting
#: points -- the calibration workflow refits them per configuration.
DEFAULT_DECODER_SCALE = {
    "bcjr": 1.0,
    "sova": 0.9,
    "viterbi": 0.0,
}


def snr_scale(snr_db):
    """The ``Es/N0`` factor (linear) for an SNR in dB."""
    return float(snr_db_to_linear(snr_db))


def modulation_scale(modulation):
    """The ``S_modulation`` factor for a modulation (object or name)."""
    name = modulation if isinstance(modulation, str) else modulation.name
    try:
        return MODULATION_SCALE[name]
    except KeyError:
        raise KeyError("unknown modulation %r" % name) from None


def decoder_scale(decoder):
    """The default ``S_decoder`` factor for a decoder (object or name)."""
    name = decoder if isinstance(decoder, str) else decoder.name
    try:
        return DEFAULT_DECODER_SCALE[name]
    except KeyError:
        raise KeyError("unknown decoder %r" % name) from None


class ScalingFactors:
    """The three factors of equation 5 bundled together.

    Parameters
    ----------
    snr_db:
        The (assumed) signal-to-noise ratio.  The paper argues a constant
        per-modulation SNR is sufficient because the useful SNR range of a
        modulation only spans a few dB.
    modulation:
        Modulation name or object.
    decoder:
        Decoder name or object, or an explicit numeric ``S_decoder``.
    """

    def __init__(self, snr_db, modulation, decoder):
        self.snr_db = float(snr_db)
        self.modulation_name = (
            modulation if isinstance(modulation, str) else modulation.name
        )
        if isinstance(decoder, (int, float)):
            self.decoder_name = "custom"
            self._decoder_scale = float(decoder)
        else:
            self.decoder_name = decoder if isinstance(decoder, str) else decoder.name
            self._decoder_scale = decoder_scale(self.decoder_name)

    @property
    def snr_factor(self):
        return snr_scale(self.snr_db)

    @property
    def modulation_factor(self):
        return modulation_scale(self.modulation_name)

    @property
    def decoder_factor(self):
        return self._decoder_scale

    @property
    def combined(self):
        """The full multiplicative factor applied to a hardware LLR."""
        return self.snr_factor * self.modulation_factor * self.decoder_factor

    def true_llr(self, hardware_llr):
        """Apply equation 5 to hardware LLR hints."""
        return self.combined * hardware_llr

    def __repr__(self):
        return (
            "ScalingFactors(snr_db=%.1f, modulation=%s, decoder=%s, combined=%.4g)"
            % (self.snr_db, self.modulation_name, self.decoder_name, self.combined)
        )
