"""Per-bit BER estimation from SoftPHY hints (equations 4 and 5).

Given a true log-likelihood ratio ``LLR`` (the confidence that the decision
is correct), the probability that the bit is wrong is

    BER_bit = 1 / (1 + exp(LLR))                              (equation 4)

A hardware decoder does not emit the true LLR; its hint must first be scaled
by the SNR, modulation and decoder factors of equation 5.  Computing the
exponential at line rate is not realistic, so the paper proposes a two-level
lookup: the modulation (and decoder) selects a table, and the hint -- an
integer in hardware -- indexes it.  The SNR factor inside each table is a
*constant* chosen in the middle of the modulation's useful SNR range, which
the paper argues costs little accuracy because that range is only a few dB
wide.  :class:`BerEstimator` implements exactly that structure.
"""

import numpy as np

from repro.softphy.scaling import ScalingFactors

#: Default "middle of the useful SNR range" constants per modulation, in dB.
#: The useful range is where the modulation's BER falls from 1e-1 to 1e-7
#: (a few dB, per Doufexi et al.); these are the midpoints used when the
#: caller does not supply a calibrated value.
DEFAULT_SNR_CONSTANTS_DB = {
    "BPSK": 3.0,
    "QPSK": 5.5,
    "QAM16": 11.0,
    "QAM64": 17.0,
}

#: Floor applied to estimates so that downstream logarithms are safe; the
#: paper only needs estimates down to about 1e-7.
MIN_BER = 1e-9


def llr_to_ber(llr):
    """Equation 4: convert a true (scaled) LLR into a per-bit BER.

    ``llr`` is the confidence that the decision is *correct*, so larger
    values mean smaller error probability.  Values are clipped so the result
    stays within ``[MIN_BER, 0.5]``.
    """
    llr = np.asarray(llr, dtype=np.float64)
    with np.errstate(over="ignore"):
        ber = 1.0 / (1.0 + np.exp(llr))
    return np.clip(ber, MIN_BER, 0.5)


def ber_to_llr(ber):
    """Inverse of :func:`llr_to_ber` (useful for calibration and tests)."""
    ber = np.clip(np.asarray(ber, dtype=np.float64), MIN_BER, 0.5)
    return np.log((1.0 - ber) / ber)


class BerLookupTable:
    """Second-level lookup: integer hint -> per-bit BER for one configuration.

    Parameters
    ----------
    scale:
        Combined scaling factor applied to the hint before equation 4 (the
        product of the SNR constant, modulation and decoder factors), or a
        :class:`~repro.softphy.scaling.ScalingFactors` instance.
    max_hint:
        Largest hint value representable in hardware; larger hints saturate.
    resolution:
        Hint quantisation step (1.0 models an integer hint bus).
    """

    def __init__(self, scale, max_hint=63, resolution=1.0):
        if isinstance(scale, ScalingFactors):
            scale = scale.combined
        if scale <= 0:
            raise ValueError("the combined scaling factor must be positive")
        self.scale = float(scale)
        self.max_hint = float(max_hint)
        self.resolution = float(resolution)
        hints = np.arange(0.0, self.max_hint + self.resolution, self.resolution)
        self._hints = hints
        self._table = llr_to_ber(self.scale * hints)

    @property
    def size(self):
        """Number of table entries (a hardware cost driver)."""
        return self._table.size

    def lookup(self, hints):
        """Vectorised lookup of per-bit BER estimates for raw hints."""
        hints = np.abs(np.asarray(hints, dtype=np.float64))
        indices = np.clip(
            np.round(hints / self.resolution).astype(np.int64), 0, self._table.size - 1
        )
        return self._table[indices]

    def __repr__(self):
        return "BerLookupTable(scale=%.4g, entries=%d)" % (self.scale, self.size)


class BerEstimator:
    """The paper's two-level BER estimator.

    The first level selects a lookup table by (modulation, decoder); the
    second level indexes it with the hint.  Tables use a constant
    per-modulation SNR rather than a run-time SNR estimate.

    Parameters
    ----------
    decoder:
        Decoder name or object (``"bcjr"`` / ``"sova"``).
    snr_constants_db:
        Optional mapping of modulation name to the constant SNR used in its
        table; defaults to :data:`DEFAULT_SNR_CONSTANTS_DB`.
    decoder_scales:
        Optional mapping of modulation name to a calibrated ``S_decoder``
        (from :mod:`repro.softphy.calibration`); falls back to the decoder's
        default factor.
    max_hint, resolution:
        Forwarded to each :class:`BerLookupTable`.
    """

    def __init__(
        self,
        decoder,
        snr_constants_db=None,
        decoder_scales=None,
        max_hint=63,
        resolution=1.0,
    ):
        self.decoder_name = decoder if isinstance(decoder, str) else decoder.name
        self.snr_constants_db = dict(DEFAULT_SNR_CONSTANTS_DB)
        if snr_constants_db:
            self.snr_constants_db.update(snr_constants_db)
        self.decoder_scales = dict(decoder_scales or {})
        self.max_hint = max_hint
        self.resolution = resolution
        self._tables = {}

    def _scaling_for(self, modulation_name):
        decoder = self.decoder_scales.get(modulation_name, self.decoder_name)
        return ScalingFactors(
            snr_db=self.snr_constants_db[modulation_name],
            modulation=modulation_name,
            decoder=decoder,
        )

    def table_for(self, modulation):
        """First-level lookup: return (building lazily) the table for a modulation."""
        name = modulation if isinstance(modulation, str) else modulation.name
        if name not in self._tables:
            self._tables[name] = BerLookupTable(
                self._scaling_for(name),
                max_hint=self.max_hint,
                resolution=self.resolution,
            )
        return self._tables[name]

    def per_bit_ber(self, hints, modulation):
        """Per-bit BER estimates for an array of hints."""
        return self.table_for(modulation).lookup(hints)

    def packet_ber(self, hints, modulation):
        """Per-packet BER: the arithmetic mean of the per-bit estimates.

        ``hints`` may be one packet (1-D) or a batch (2-D); the mean is
        taken over the last axis.
        """
        per_bit = self.per_bit_ber(hints, modulation)
        return per_bit.mean(axis=-1)

    def __repr__(self):
        return "BerEstimator(decoder=%s, tables=%d)" % (
            self.decoder_name,
            len(self._tables),
        )
