"""Calibration: measuring the BER-versus-hint relationship (Figure 5).

The paper validates its hardware SoftPHY implementations by transmitting
very large numbers of bits and plotting, for every LLR hint value, the
fraction of bits carrying that hint that were decoded incorrectly.  The
resulting curves are log-linear (straight lines on a semi-log plot), and
their slopes depend on SNR, modulation and decoder -- which is exactly the
structure predicted by equations 4 and 5.  The fitted slope and intercept
then supply the scaling factors for the production lookup tables.

This module provides the measurement (:func:`measure_ber_vs_hint`), the
log-linear fit (:func:`fit_log_linear`) and a convenience routine that turns
a fit into the decoder scale used by
:class:`~repro.softphy.ber_estimator.BerEstimator`.
"""

import numpy as np

from repro.analysis.ber_stats import bin_errors_by_hint, wilson_interval
from repro.analysis.link import LinkSimulator
from repro.softphy.scaling import modulation_scale, snr_scale


class BerVersusHint:
    """Binned BER-versus-hint measurement for one operating point.

    Attributes
    ----------
    hints:
        Bin centres (hint values).
    bits:
        Number of decoded bits falling in each bin.
    errors:
        Number of those bits that were decoded incorrectly.
    label:
        Human-readable description of the operating point.
    """

    def __init__(self, hints, bits, errors, label=""):
        self.hints = np.asarray(hints, dtype=np.float64)
        self.bits = np.asarray(bits, dtype=np.int64)
        self.errors = np.asarray(errors, dtype=np.int64)
        self.label = label

    @property
    def ber(self):
        """Per-bin BER (NaN where a bin holds no bits)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.bits > 0, self.errors / self.bits, np.nan)

    def confidence_intervals(self, confidence=0.95):
        """Per-bin Wilson intervals (NaN bounds for empty bins)."""
        lows = np.full(self.hints.shape, np.nan)
        highs = np.full(self.hints.shape, np.nan)
        for i, (errors, bits) in enumerate(zip(self.errors, self.bits)):
            if bits > 0:
                lows[i], highs[i] = wilson_interval(int(errors), int(bits), confidence)
        return lows, highs

    def reliable_mask(self, min_bits=1000, min_errors=1):
        """Bins with enough data for the log-linear fit."""
        return (self.bits >= min_bits) & (self.errors >= min_errors)

    def merge(self, other):
        """Combine with another measurement taken on the same bins."""
        if not np.array_equal(self.hints, other.hints):
            raise ValueError("cannot merge measurements with different hint bins")
        return BerVersusHint(
            self.hints, self.bits + other.bits, self.errors + other.errors, self.label
        )

    def __repr__(self):
        return "BerVersusHint(label=%r, bins=%d, bits=%d)" % (
            self.label,
            self.hints.size,
            int(self.bits.sum()),
        )


class LogLinearFit:
    """A fit of ``log(BER) = intercept - slope * hint``.

    The paper's Figure 5 shows this relationship holds for both decoders;
    the slope is the combined scaling factor of equation 5 (because equation
    4 gives ``log BER ~ -LLR_true`` for small BER).
    """

    def __init__(self, slope, intercept, r_squared, points_used):
        self.slope = float(slope)
        self.intercept = float(intercept)
        self.r_squared = float(r_squared)
        self.points_used = int(points_used)

    def predict_ber(self, hints):
        """BER predicted by the fitted line."""
        hints = np.asarray(hints, dtype=np.float64)
        return np.exp(self.intercept - self.slope * hints)

    def hint_for_ber(self, ber):
        """Hint value at which the fitted line reaches ``ber``."""
        if self.slope <= 0:
            raise ValueError("fit has a non-positive slope; cannot invert")
        return (self.intercept - np.log(ber)) / self.slope

    def implied_decoder_scale(self, snr_db, modulation):
        """Back out ``S_decoder`` from the fitted slope (equation 5).

        For small BER, equation 4 gives ``ln BER ~ -LLR_true``, and equation
        5 says ``LLR_true = (Es/N0) * S_mod * S_dec * hint``; the fitted
        slope therefore equals the product of the three factors.
        """
        denominator = snr_scale(snr_db) * modulation_scale(modulation)
        return self.slope / denominator

    def __repr__(self):
        return "LogLinearFit(slope=%.4g, intercept=%.4g, r2=%.3f)" % (
            self.slope,
            self.intercept,
            self.r_squared,
        )


def fit_log_linear(measurement, min_bits=1000, min_errors=1):
    """Fit a log-linear line through a :class:`BerVersusHint` measurement.

    Bins with too little data are excluded; a fit needs at least two usable
    bins.
    """
    mask = measurement.reliable_mask(min_bits=min_bits, min_errors=min_errors)
    if mask.sum() < 2:
        raise ValueError(
            "not enough populated hint bins for a fit (have %d, need 2); "
            "simulate more bits" % int(mask.sum())
        )
    hints = measurement.hints[mask]
    log_ber = np.log(measurement.ber[mask])
    # Weight bins by their error counts: bins with more observed errors have
    # tighter BER estimates.
    weights = np.sqrt(measurement.errors[mask].astype(np.float64))
    coefficients = np.polyfit(hints, log_ber, deg=1, w=weights)
    slope = -coefficients[0]
    intercept = coefficients[1]
    predicted = np.polyval(coefficients, hints)
    residual = log_ber - predicted
    total = log_ber - np.average(log_ber, weights=weights)
    r_squared = 1.0 - float(
        np.sum(weights * residual**2) / max(np.sum(weights * total**2), 1e-12)
    )
    return LogLinearFit(slope, intercept, r_squared, points_used=int(mask.sum()))


def measure_ber_vs_hint(
    phy_rate,
    snr_db,
    decoder,
    num_packets,
    packet_bits=1704,
    seed=0,
    bin_width=1.0,
    max_hint=63,
    batch_size=32,
    llr_format=None,
):
    """Simulate packets and bin decoding errors by hint value.

    Parameters
    ----------
    phy_rate:
        Operating :class:`~repro.phy.params.PhyRate`.
    snr_db:
        AWGN SNR in dB.
    decoder:
        ``"sova"`` or ``"bcjr"`` (anything accepted by the receiver that
        produces soft output).
    num_packets, packet_bits:
        Amount of traffic to simulate.
    seed:
        Reproducibility seed.
    bin_width, max_hint:
        Hint binning (hardware hints are small integers).
    batch_size:
        Decoder batch size.
    llr_format:
        Optional fixed-point demapper output format.

    Returns
    -------
    BerVersusHint
    """
    simulator = LinkSimulator(
        phy_rate,
        snr_db,
        decoder=decoder,
        packet_bits=packet_bits,
        seed=seed,
        llr_format=llr_format,
    )
    result = simulator.run(num_packets, batch_size=batch_size)
    if result.hints is None:
        raise ValueError("decoder %r does not produce SoftPHY hints" % (decoder,))
    edges = np.arange(0.0, float(max_hint) + bin_width, bin_width)
    centres, bits, errors = bin_errors_by_hint(
        result.hints, result.bit_errors, bin_edges=edges
    )
    label = "%s, %s, SNR %.1f dB" % (
        decoder if isinstance(decoder, str) else decoder.name,
        phy_rate.name,
        snr_db,
    )
    return BerVersusHint(centres, bits, errors, label=label)


def calibrate_decoder_scale(
    phy_rate, snr_db, decoder, num_packets, packet_bits=1704, seed=0, **kwargs
):
    """Measure, fit and return the implied ``S_decoder`` for one configuration."""
    measurement = measure_ber_vs_hint(
        phy_rate, snr_db, decoder, num_packets, packet_bits=packet_bits, seed=seed, **kwargs
    )
    fit = fit_log_linear(measurement, min_bits=100)
    return fit.implied_decoder_scale(snr_db, phy_rate.modulation)
