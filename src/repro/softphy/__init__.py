"""SoftPHY: per-bit and per-packet BER estimation from decoder LLRs.

This subpackage is the paper's case study (Section 4): converting the
confidence values ("SoftPHY hints") emitted by a soft-decision convolutional
decoder into calibrated bit-error-rate estimates that upper layers -- the
SoftRate MAC, partial packet recovery, ARQ -- can act on.

* :mod:`repro.softphy.scaling` -- the three scaling factors of equation 5
  (SNR, modulation, decoder) that relate a hardware decoder's LLR output to
  the true LLR.
* :mod:`repro.softphy.ber_estimator` -- equation 4 (LLR to BER), the
  constant-SNR simplification and the two-level lookup-table estimator the
  paper proposes for hardware.
* :mod:`repro.softphy.packet_ber` -- per-packet BER as the mean of the
  per-bit estimates, plus ground-truth helpers.
* :mod:`repro.softphy.calibration` -- empirical measurement of the
  BER-versus-hint relationship (Figure 5) and the log-linear fit used to
  derive scaling factors and lookup tables.
"""

from repro.softphy.ber_estimator import (
    BerEstimator,
    BerLookupTable,
    llr_to_ber,
    ber_to_llr,
)
from repro.softphy.packet_ber import (
    ground_truth_packet_ber,
    packet_ber_estimate,
    packet_error_probability,
)
from repro.softphy.scaling import ScalingFactors, decoder_scale, modulation_scale, snr_scale
from repro.softphy.calibration import (
    BerVersusHint,
    LogLinearFit,
    fit_log_linear,
    measure_ber_vs_hint,
)

__all__ = [
    "BerEstimator",
    "BerLookupTable",
    "BerVersusHint",
    "LogLinearFit",
    "ScalingFactors",
    "ber_to_llr",
    "decoder_scale",
    "fit_log_linear",
    "ground_truth_packet_ber",
    "llr_to_ber",
    "measure_ber_vs_hint",
    "modulation_scale",
    "packet_ber_estimate",
    "packet_error_probability",
    "snr_scale",
]
