"""Fixed-point arithmetic support for the "hardware" partition.

The paper stresses that real-time hardware deployments replace floating
point with fixed point and that the resulting quantisation distorts the
inputs of downstream modules in hard-to-predict ways (its motivating example
is the demapper soft outputs, which shrink from 23-28 bits to 3-8 bits once
the SNR and modulation scaling factors are dropped).  This subpackage gives
the rest of the library a single, well-tested way to express those
quantisations:

* :class:`~repro.fixedpoint.fixed.FixedPointFormat` -- a signed/unsigned
  Q-format descriptor with quantisation and saturation helpers.
* :func:`~repro.fixedpoint.fixed.quantize` -- array quantisation in one call.
"""

from repro.fixedpoint.fixed import FixedPointFormat, quantize

__all__ = ["FixedPointFormat", "quantize"]
