"""Q-format fixed-point descriptors and array quantisation.

A :class:`FixedPointFormat` describes a two's-complement (or unsigned)
fixed-point representation with ``integer_bits`` bits to the left of the
binary point and ``fraction_bits`` to the right.  Quantisation rounds to the
nearest representable value and saturates at the representable range, which
is how the hardware demapper and decoder datapaths in the paper behave.
"""

import numpy as np


class FixedPointFormat:
    """A fixed-point number format.

    Parameters
    ----------
    integer_bits:
        Number of integer bits, excluding the sign bit.
    fraction_bits:
        Number of fractional bits.
    signed:
        Whether the format carries a sign bit.

    Examples
    --------
    >>> fmt = FixedPointFormat(integer_bits=3, fraction_bits=2)
    >>> fmt.total_bits
    6
    >>> float(fmt.quantize(1.26))
    1.25
    >>> float(fmt.quantize(100.0))   # saturates
    7.75
    """

    def __init__(self, integer_bits, fraction_bits, signed=True):
        if integer_bits < 0 or fraction_bits < 0:
            raise ValueError("bit counts must be non-negative")
        if integer_bits + fraction_bits == 0:
            raise ValueError("format must have at least one magnitude bit")
        self.integer_bits = int(integer_bits)
        self.fraction_bits = int(fraction_bits)
        self.signed = bool(signed)

    @property
    def total_bits(self):
        """Total storage width, including the sign bit when signed."""
        return self.integer_bits + self.fraction_bits + (1 if self.signed else 0)

    @property
    def resolution(self):
        """Smallest representable increment."""
        return 2.0 ** -self.fraction_bits

    @property
    def max_value(self):
        """Largest representable value."""
        return 2.0 ** self.integer_bits - self.resolution

    @property
    def min_value(self):
        """Smallest representable value (0 for unsigned formats)."""
        if self.signed:
            return -(2.0 ** self.integer_bits)
        return 0.0

    def quantize(self, values):
        """Round ``values`` to this format, saturating out-of-range inputs.

        Accepts scalars or numpy arrays and returns the same shape as float.
        """
        array = np.asarray(values, dtype=float)
        scaled = np.round(array / self.resolution) * self.resolution
        return np.clip(scaled, self.min_value, self.max_value)

    def quantization_error(self, values):
        """Return ``quantize(values) - values`` (useful for tests and studies)."""
        return self.quantize(values) - np.asarray(values, dtype=float)

    def representable_count(self):
        """Number of distinct representable values."""
        return 2 ** self.total_bits

    def __eq__(self, other):
        if not isinstance(other, FixedPointFormat):
            return NotImplemented
        return (
            self.integer_bits == other.integer_bits
            and self.fraction_bits == other.fraction_bits
            and self.signed == other.signed
        )

    def __hash__(self):
        return hash((self.integer_bits, self.fraction_bits, self.signed))

    def __repr__(self):
        kind = "s" if self.signed else "u"
        return "FixedPointFormat(Q%s%d.%d)" % (kind, self.integer_bits, self.fraction_bits)


def quantize(values, integer_bits, fraction_bits, signed=True):
    """One-shot quantisation without building a format object first."""
    return FixedPointFormat(integer_bits, fraction_bits, signed=signed).quantize(values)


def llr_quantizer(total_bits, max_abs=8.0):
    """Build the format the hardware decoders use for demapper soft values.

    The paper reports that dropping the SNR/modulation scaling lets the
    decoder input shrink to 3-8 bits.  This helper maps a requested total
    bit-width and expected dynamic range onto a signed format covering
    roughly ``[-max_abs, +max_abs]``.

    Parameters
    ----------
    total_bits:
        Desired storage width, including sign (must be at least 2).
    max_abs:
        Magnitude the format should be able to represent without saturating.
    """
    if total_bits < 2:
        raise ValueError("an LLR quantizer needs at least 2 bits (sign + magnitude)")
    wanted_integer_bits = max(1, int(np.ceil(np.log2(max_abs))))
    # Never exceed the requested storage width: sacrifice range (saturate
    # earlier) before blowing the bit budget, as narrow hardware would.
    integer_bits = min(wanted_integer_bits, total_bits - 1)
    fraction_bits = total_bits - 1 - integer_bits
    return FixedPointFormat(integer_bits, fraction_bits, signed=True)
