"""The SoftRate rate-adaptation controller.

SoftRate (Vutukuru et al., SIGCOMM'09) chooses the transmission rate of the
*next* packet from the predicted per-packet BER of the current one.  The
paper's description (Section 4.4.2): if the calculated PBER at the current
rate falls outside a pre-computed range -- for the ARQ link layer, between
1e-7 and 1e-5 -- the rate is immediately adjusted up or down.

The controller below implements that window policy over the 802.11a/g rate
table, together with the two interpacket heuristics the original SoftRate
protocol uses to keep the window policy from oscillating around the optimal
rate:

* an *up-hysteresis*: the PBER must sit below the lower threshold for a few
  consecutive packets before the rate is raised (one very confident packet
  is not evidence that the next rate up will work), and
* a *probe backoff*: when a rate increase is immediately followed by a bad
  packet, the controller steps back down and suppresses further increases
  for a number of packets, so a channel that cleanly supports rate ``r`` but
  not ``r+1`` is probed only occasionally instead of every other packet.

Setting ``up_hysteresis=1`` and ``backoff_packets=0`` recovers the plain
threshold-window policy.

The controller implements the
:class:`~repro.mac.rateadapt.controllers.RateController` protocol
(``choose``/``observe``/``to_dict``/``from_dict``) so it competes with the
frame-level samplers in :mod:`repro.mac.rateadapt` over the same
closed-loop links; :meth:`SoftRateController.update` remains the primitive
the Figure 7 evaluation has always called, and ``observe`` is a thin
delegation to it, so the refactor changes no decision bit for bit.
"""

from repro.mac.rateadapt.controllers import (RateController, classify_selection,
                                             optimal_rate_index)
from repro.phy.params import RATE_TABLE, rate_by_mbps

__all__ = ["SoftRateController", "classify_selection", "optimal_rate_index"]


class SoftRateController(RateController):
    """Threshold-window rate adaptation driven by PBER feedback.

    Parameters
    ----------
    lower_pber, upper_pber:
        The target PBER window; the paper quotes [1e-7, 1e-5] for an ARQ
        link layer.
    initial_rate:
        Starting :class:`~repro.phy.params.PhyRate` (defaults to the lowest
        rate, 6 Mb/s).
    rates:
        Ordered rate table to adapt over.
    up_hysteresis:
        Number of consecutive below-window packets required before the rate
        is increased (1 = step up immediately, which keeps the controller
        responsive to improving fades).
    backoff_packets:
        Number of packets during which rate increases are suppressed after a
        failed probe (an increase immediately followed by an above-window
        packet).
    """

    kind = "softrate"

    def __init__(
        self,
        lower_pber=1e-7,
        upper_pber=1e-5,
        initial_rate=None,
        rates=RATE_TABLE,
        up_hysteresis=1,
        backoff_packets=12,
    ):
        if not 0.0 < lower_pber < upper_pber < 1.0:
            raise ValueError("thresholds must satisfy 0 < lower < upper < 1")
        if up_hysteresis < 1:
            raise ValueError("up_hysteresis must be at least 1")
        if backoff_packets < 0:
            raise ValueError("backoff_packets must be non-negative")
        super().__init__(rates)
        self.lower_pber = float(lower_pber)
        self.upper_pber = float(upper_pber)
        self.up_hysteresis = int(up_hysteresis)
        self.backoff_packets = int(backoff_packets)
        if initial_rate is None:
            self._index = 0
        else:
            self._index = self._index_of(initial_rate)
        self._initial_index = self._index
        self.decisions = 0
        self.rate_increases = 0
        self.rate_decreases = 0
        self._consecutive_low = 0
        self._backoff_remaining = 0
        self._just_probed_up = False

    def _index_of(self, rate):
        for i, candidate in enumerate(self.rates):
            if candidate == rate:
                return i
        raise ValueError("rate %r is not in this controller's rate table" % (rate,))

    @property
    def current_rate(self):
        """The rate the next packet will be transmitted at."""
        return self.rates[self._index]

    @property
    def current_index(self):
        """Index of the current rate in the controller's table."""
        return self._index

    # ------------------------------------------------------------------ #
    # The RateController protocol
    # ------------------------------------------------------------------ #
    def choose(self):
        """Index of the rate the next packet should be sent at (pure)."""
        return self._index

    def observe(self, feedback):
        """Consume one packet's :class:`~repro.mac.rateadapt.controllers.RateFeedback`.

        Delegates to :meth:`update` with the SoftPHY PBER estimate;
        ``None`` (no estimate — the packet or its acknowledgement was
        lost) is what ``update`` already treats as an above-window
        packet, so hard-decision feedback degrades gracefully.
        """
        self.update(feedback.pber_estimate)

    def to_dict(self):
        """Canonical plain-data configuration (JSON-able)."""
        out = {
            "type": self.kind,
            "rates_mbps": self._rates_mbps(),
            "lower_pber": self.lower_pber,
            "upper_pber": self.upper_pber,
            "up_hysteresis": self.up_hysteresis,
            "backoff_packets": self.backoff_packets,
        }
        if self._initial_index != 0:
            out["initial_rate_mbps"] = self.rates[self._initial_index].data_rate_mbps
        return out

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        if data.pop("type", cls.kind) != cls.kind:
            raise ValueError("not a %r controller dict" % cls.kind)
        rates = cls._rates_from_dict(data)
        initial_mbps = data.pop("initial_rate_mbps", None)
        initial = None if initial_mbps is None else rate_by_mbps(initial_mbps)
        return cls(rates=rates, initial_rate=initial, **data)

    def update(self, pber_estimate):
        """Consume one packet's PBER feedback and return the next rate.

        ``None`` feedback (the packet or its acknowledgement was lost) is
        treated as a PBER above the upper threshold.
        """
        self.decisions += 1
        if pber_estimate is None:
            pber_estimate = 1.0
        if self._backoff_remaining > 0:
            self._backoff_remaining -= 1

        if pber_estimate > self.upper_pber:
            self._consecutive_low = 0
            if self._just_probed_up:
                # The rate increase did not survive contact with the channel:
                # back off before probing again.
                self._backoff_remaining = self.backoff_packets
            if self._index > 0:
                self._index -= 1
                self.rate_decreases += 1
        elif pber_estimate < self.lower_pber:
            self._consecutive_low += 1
            can_increase = (
                self._index < len(self.rates) - 1
                and self._consecutive_low >= self.up_hysteresis
                and self._backoff_remaining == 0
            )
            if can_increase:
                self._index += 1
                self.rate_increases += 1
                self._consecutive_low = 0
                self._just_probed_up = True
                return self.current_rate
        else:
            self._consecutive_low = 0

        self._just_probed_up = False
        return self.current_rate

    def reset(self, initial_rate=None):
        """Return to the configured initial rate and clear the counters.

        Passing ``initial_rate`` re-bases the controller on a different
        starting rate instead.
        """
        if initial_rate is None:
            self._index = self._initial_index
        else:
            self._index = self._index_of(initial_rate)
            self._initial_index = self._index
        self.decisions = 0
        self.rate_increases = 0
        self.rate_decreases = 0
        self._consecutive_low = 0
        self._backoff_remaining = 0
        self._just_probed_up = False

    def __repr__(self):
        return "SoftRateController(rate=%s, window=[%.0e, %.0e])" % (
            self.current_rate.name,
            self.lower_pber,
            self.upper_pber,
        )
