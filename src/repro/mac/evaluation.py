"""The Figure 7 experiment: SoftRate accuracy under a fading channel.

The paper transmits a stream of packets over a 20 Hz Rayleigh fading channel
with 10 dB AWGN, lets SoftRate pick each packet's rate from the previous
packet's predicted PBER, and compares every choice with the *optimal* rate:
the highest rate at which that very packet (same payload, same noise, same
fade) would have been received without error.  A pseudo-random noise model
makes the "same noise at every rate" comparison possible.  Each selection is
classified as underselect, accurate or overselect; the paper reports both
decoders accurate more than 80% of the time, with SOVA underselecting about
4% more often than BCJR and both overselecting about 2% of the time.

:class:`SoftRateEvaluation` reproduces that pipeline.  The expensive part --
decoding every packet at every rate -- is precomputed in rate-major batches
so the decoder's batched kernels are used; the sequential controller loop
then replays the precomputed outcomes.  The precompute itself is the
shared :meth:`~repro.mac.rateadapt.closedloop.ClosedLoopLink.decode_window`
(this evaluation is its ``first_index=0`` window), and the replay speaks
the :class:`~repro.mac.rateadapt.controllers.RateController` protocol, so
the Figure 7 harness and the closed-loop rate-adaptation experiments are
one code path.
"""

import numpy as np

from repro.channel.reproducible import ReproducibleNoise
from repro.mac.rateadapt.closedloop import ClosedLoopLink, PrecomputedOutcomes
from repro.mac.rateadapt.controllers import (RateFeedback, classify_selection,
                                             optimal_rate_index)
from repro.mac.softrate import SoftRateController
from repro.phy.params import RATE_TABLE


class RateSelectionOutcome:
    """Aggregate classification counts for one SoftRate run."""

    def __init__(self):
        self.underselect = 0
        self.accurate = 0
        self.overselect = 0

    def record(self, classification):
        if classification == "underselect":
            self.underselect += 1
        elif classification == "accurate":
            self.accurate += 1
        elif classification == "overselect":
            self.overselect += 1
        else:
            raise ValueError("unknown classification %r" % classification)

    @property
    def total(self):
        return self.underselect + self.accurate + self.overselect

    def fraction(self, kind):
        """Fraction of packets classified as ``kind``."""
        if self.total == 0:
            return 0.0
        return getattr(self, kind) / self.total

    @property
    def accuracy(self):
        """Fraction of packets sent at exactly the optimal rate."""
        return self.fraction("accurate")

    def as_dict(self):
        """Percentages in the Figure 7 layout."""
        return {
            "underselect": self.fraction("underselect"),
            "accurate": self.fraction("accurate"),
            "overselect": self.fraction("overselect"),
        }

    def __repr__(self):
        return "RateSelectionOutcome(under=%d, accurate=%d, over=%d)" % (
            self.underselect,
            self.accurate,
            self.overselect,
        )


class SoftRateResult:
    """Everything produced by one SoftRate run."""

    def __init__(self, decoder_name, outcome, chosen_indices, optimal_indices, rates):
        self.decoder_name = decoder_name
        self.outcome = outcome
        self.chosen_indices = np.asarray(chosen_indices, dtype=np.int64)
        self.optimal_indices = np.asarray(optimal_indices, dtype=np.int64)
        self.rates = tuple(rates)

    @property
    def achieved_throughput_mbps(self):
        """Mean data rate of packets sent at or below their optimal rate.

        Packets sent above the optimal rate are counted as zero throughput
        (they would not have been received), which mirrors how SoftRate's
        gain is computed.
        """
        delivered = self.chosen_indices <= self.optimal_indices
        rates = np.array([self.rates[i].data_rate_mbps for i in self.chosen_indices])
        return float(np.mean(np.where(delivered, rates, 0.0)))

    @property
    def optimal_throughput_mbps(self):
        """Mean data rate an oracle rate-picker would have achieved."""
        rates = np.array([self.rates[i].data_rate_mbps for i in self.optimal_indices])
        return float(np.mean(rates))

    def __repr__(self):
        return "SoftRateResult(decoder=%s, accuracy=%.1f%%)" % (
            self.decoder_name,
            100.0 * self.outcome.accuracy,
        )


class SoftRateEvaluation:
    """Set up and run the Figure 7 experiment.

    Parameters
    ----------
    snr_db:
        Mean AWGN SNR (10 dB in the paper).
    doppler_hz:
        Fading Doppler frequency (20 Hz in the paper).
    num_packets:
        Number of packets in the stream.
    packet_bits:
        Payload size (1704 bits as in Figure 6).
    packet_interval_s:
        Time between successive packets, which sets how fast the fading
        changes from packet to packet.
    seed:
        Master seed for payloads, noise and the fading trace.
    rates:
        Rate table to adapt over.
    """

    def __init__(
        self,
        snr_db=10.0,
        doppler_hz=20.0,
        num_packets=200,
        packet_bits=1704,
        packet_interval_s=2e-3,
        seed=0,
        rates=RATE_TABLE,
    ):
        self.snr_db = float(snr_db)
        self.doppler_hz = float(doppler_hz)
        self.num_packets = int(num_packets)
        self.packet_bits = int(packet_bits)
        self.packet_interval_s = float(packet_interval_s)
        self.seed = seed
        self.rates = tuple(rates)
        self.noise = ReproducibleNoise(seed)
        self._link_cache = {}
        self.gains = self._link("bcjr").gains(0, self.num_packets)

    def _link(self, decoder_name):
        """The :class:`ClosedLoopLink` that decodes this evaluation's stream."""
        name = decoder_name if isinstance(decoder_name, str) else decoder_name.name
        link = self._link_cache.get(name)
        if link is None:
            link = ClosedLoopLink(
                snr_db=self.snr_db,
                doppler_hz=self.doppler_hz,
                packet_bits=self.packet_bits,
                packet_interval_s=self.packet_interval_s,
                seed=self.seed,
                rates=self.rates,
                decoder=name,
            )
            self._link_cache[name] = link
        return link

    # ------------------------------------------------------------------ #
    # Precomputation: decode every packet at every rate
    # ------------------------------------------------------------------ #
    def precompute(self, decoder_name, batch_size=16, estimator=None):
        """Decode every packet at every rate with ``decoder_name``.

        Returns a :class:`PrecomputedOutcomes` used by :meth:`run`.
        Delegates to the shared chunk-invariant
        :meth:`~repro.mac.rateadapt.closedloop.ClosedLoopLink.decode_window`
        — this evaluation is the window starting at packet 0.
        """
        return self._link(decoder_name).decode_window(
            0, self.num_packets, batch_size=batch_size, estimator=estimator)

    # ------------------------------------------------------------------ #
    # Controller replay
    # ------------------------------------------------------------------ #
    #: Default controller window used by :meth:`run`.  The paper quotes a
    #: [1e-7, 1e-5] window for its estimator; this reproduction's estimator
    #: is calibrated differently (its constant-SNR tables are more
    #: pessimistic above each modulation's design point), so the equivalent
    #: operating window for the same behaviour is wider.  The deviation is
    #: recorded in EXPERIMENTS.md.
    DEFAULT_CONTROLLER_WINDOW = (1e-5, 1e-2)

    def run(self, decoder_name, controller=None, precomputed=None, batch_size=16):
        """Run SoftRate with ``decoder_name`` estimates and classify every choice."""
        if precomputed is None:
            precomputed = self.precompute(decoder_name, batch_size=batch_size)
        if controller is None:
            lower, upper = self.DEFAULT_CONTROLLER_WINDOW
            controller = SoftRateController(
                lower_pber=lower,
                upper_pber=upper,
                backoff_packets=6,
                rates=self.rates,
            )
        outcome = RateSelectionOutcome()
        chosen_indices = np.empty(self.num_packets, dtype=np.int64)
        optimal_indices = np.empty(self.num_packets, dtype=np.int64)

        for index in range(self.num_packets):
            chosen = controller.choose()
            optimal = optimal_rate_index(precomputed.success[index])
            chosen_indices[index] = chosen
            optimal_indices[index] = optimal
            outcome.record(classify_selection(chosen, optimal))
            controller.observe(RateFeedback(
                chosen,
                bool(precomputed.success[index, chosen]),
                pber_estimate=float(precomputed.pber_estimate[index, chosen]),
            ))

        return SoftRateResult(
            decoder_name
            if isinstance(decoder_name, str)
            else decoder_name.name,
            outcome,
            chosen_indices,
            optimal_indices,
            self.rates,
        )

    def __repr__(self):
        return (
            "SoftRateEvaluation(snr_db=%.1f, doppler_hz=%.1f, packets=%d)"
            % (self.snr_db, self.doppler_hz, self.num_packets)
        )
