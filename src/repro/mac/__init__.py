"""MAC-layer protocols built on SoftPHY estimates.

The paper motivates SoftPHY with two consumers of BER estimates: Partial
Packet Recovery (per-bit estimates decide which bits to retransmit) and
SoftRate (per-packet estimates drive rate adaptation).  Its Figure 7
evaluates SoftRate running over WiLIS with both decoder implementations.

* :mod:`repro.mac.frames` -- packet and acknowledgement records.
* :mod:`repro.mac.arq` -- a conventional stop-and-wait ARQ link layer (the
  baseline that retransmits whole packets).
* :mod:`repro.mac.ppr` -- partial packet recovery driven by per-bit BER
  estimates.
* :mod:`repro.mac.softrate` -- the SoftRate rate-adaptation controller.
* :mod:`repro.mac.rateadapt` -- the closed-loop rate-adaptation subsystem:
  the ``RateController`` protocol, the SampleRate and Minstrel samplers,
  the 802.11a/g airtime model, the chunk-invariant ``ClosedLoopLink``
  decode and the declarative ``RateAdaptScenario`` / ``RateAdaptExperiment``
  front door.
* :mod:`repro.mac.evaluation` -- the Figure 7 experiment: run SoftRate over
  a fading channel, compare every selection against the per-packet optimal
  rate and classify it as underselect / accurate / overselect.
"""

from repro.mac.arq import ArqLinkLayer, ArqStatistics
from repro.mac.evaluation import (PrecomputedOutcomes, RateSelectionOutcome,
                                  SoftRateEvaluation, SoftRateResult)
from repro.mac.frames import Acknowledgement, Packet
from repro.mac.ppr import PartialPacketRecovery, PprOutcome
from repro.mac.rateadapt import (AirtimeModel, ClosedLoopLink, LinkTrajectory,
                                 MinstrelController, RateAdaptExperiment,
                                 RateAdaptScenario, RateController,
                                 RateFeedback, SampleRateController,
                                 controller_from_dict, run_rate_adapt_batch)
from repro.mac.softrate import SoftRateController

__all__ = [
    "Acknowledgement",
    "AirtimeModel",
    "ArqLinkLayer",
    "ArqStatistics",
    "ClosedLoopLink",
    "LinkTrajectory",
    "MinstrelController",
    "Packet",
    "PartialPacketRecovery",
    "PprOutcome",
    "PrecomputedOutcomes",
    "RateAdaptExperiment",
    "RateAdaptScenario",
    "RateController",
    "RateFeedback",
    "RateSelectionOutcome",
    "SampleRateController",
    "SoftRateController",
    "SoftRateEvaluation",
    "SoftRateResult",
    "controller_from_dict",
    "run_rate_adapt_batch",
]
