"""Partial Packet Recovery (PPR) driven by per-bit BER estimates.

PPR (Jamieson & Balakrishnan, SIGCOMM'07) is the paper's first motivating
consumer of SoftPHY hints: instead of retransmitting an entire packet when
any bit is wrong, the receiver uses the per-bit BER estimates to identify
the *portions* of the packet that are likely to be in error and asks only
for those.  The implementation here works on fixed-size chunks (as PPR
does): a chunk is requested for retransmission when its worst per-bit BER
estimate exceeds a threshold, and the outcome records how many bits had to
be retransmitted compared with the whole-packet ARQ baseline.
"""

import numpy as np


class PprOutcome:
    """Result of applying PPR to one received packet."""

    def __init__(self, packet_bits, retransmit_mask, residual_errors):
        self.packet_bits = int(packet_bits)
        self.retransmit_mask = np.asarray(retransmit_mask, dtype=bool)
        self.residual_errors = int(residual_errors)

    @property
    def bits_retransmitted(self):
        """Number of bits requested for retransmission."""
        return int(self.retransmit_mask.sum())

    @property
    def retransmission_fraction(self):
        """Fraction of the packet retransmitted (1.0 would match full ARQ)."""
        return self.bits_retransmitted / self.packet_bits

    @property
    def recovered(self):
        """Whether the packet is error-free after the partial retransmission."""
        return self.residual_errors == 0

    def __repr__(self):
        return "PprOutcome(retransmit=%d/%d, recovered=%s)" % (
            self.bits_retransmitted,
            self.packet_bits,
            self.recovered,
        )


class PartialPacketRecovery:
    """Chunk-based partial packet recovery.

    Parameters
    ----------
    chunk_bits:
        Chunk granularity; PPR requests whole chunks, which models the
        framing overhead of identifying byte ranges.
    ber_threshold:
        A chunk is requested when the maximum per-bit BER estimate inside it
        exceeds this value.
    """

    def __init__(self, chunk_bits=64, ber_threshold=1e-3):
        if chunk_bits < 1:
            raise ValueError("chunk size must be at least one bit")
        if not 0.0 < ber_threshold < 1.0:
            raise ValueError("the BER threshold must lie in (0, 1)")
        self.chunk_bits = int(chunk_bits)
        self.ber_threshold = float(ber_threshold)

    def select_chunks(self, bit_ber_estimates):
        """Return a per-bit boolean mask of the bits to retransmit."""
        estimates = np.asarray(bit_ber_estimates, dtype=np.float64)
        num_bits = estimates.size
        num_chunks = int(np.ceil(num_bits / self.chunk_bits))
        mask = np.zeros(num_bits, dtype=bool)
        for chunk in range(num_chunks):
            start = chunk * self.chunk_bits
            stop = min(start + self.chunk_bits, num_bits)
            if estimates[start:stop].max() > self.ber_threshold:
                mask[start:stop] = True
        return mask

    def recover(self, transmitted_bits, decoded_bits, bit_ber_estimates):
        """Apply PPR to one packet.

        The retransmitted chunks are assumed to arrive correctly (as in the
        PPR evaluation); the outcome reports how much had to be resent and
        whether any erroneous bit escaped the recovery (a *residual* error:
        a bit that was wrong but whose chunk looked clean).
        """
        transmitted = np.asarray(transmitted_bits, dtype=np.uint8)
        decoded = np.asarray(decoded_bits, dtype=np.uint8)
        if transmitted.shape != decoded.shape:
            raise ValueError("transmitted and decoded packets differ in size")
        mask = self.select_chunks(bit_ber_estimates)
        repaired = np.where(mask, transmitted, decoded)
        residual = int(np.sum(repaired != transmitted))
        return PprOutcome(transmitted.size, mask, residual)

    def __repr__(self):
        return "PartialPacketRecovery(chunk_bits=%d, threshold=%.1e)" % (
            self.chunk_bits,
            self.ber_threshold,
        )
