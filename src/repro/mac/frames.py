"""Packet and acknowledgement records exchanged between MAC entities.

These are deliberately small, immutable-ish data carriers: the interesting
behaviour lives in the protocols (:mod:`repro.mac.arq`,
:mod:`repro.mac.softrate`, :mod:`repro.mac.ppr`), which pass these records
around the way the paper's transmitter MAC observes the PBER estimates
emitted by the receiver.
"""

import numpy as np


class Packet:
    """A MAC-layer packet.

    Parameters
    ----------
    sequence:
        Sequence number assigned by the transmitter.
    payload:
        Payload bits (numpy array of 0/1).
    rate:
        The :class:`~repro.phy.params.PhyRate` the packet is sent at.
    """

    def __init__(self, sequence, payload, rate):
        self.sequence = int(sequence)
        self.payload = np.asarray(payload, dtype=np.uint8)
        self.rate = rate

    @property
    def size_bits(self):
        """Payload size in bits."""
        return self.payload.size

    def __repr__(self):
        return "Packet(seq=%d, bits=%d, rate=%s)" % (
            self.sequence,
            self.size_bits,
            self.rate.name,
        )


class Acknowledgement:
    """Feedback returned by the receiver for one packet.

    In a real transceiver this information rides on the ARQ acknowledgement
    frame; the paper's experiment has the transmitter MAC observe the
    receiver's predicted PBER directly, which is what the evaluation harness
    does too.

    Parameters
    ----------
    sequence:
        Sequence number being acknowledged.
    received_ok:
        Whether the packet was received without error (ideal CRC).
    pber_estimate:
        The receiver's predicted per-packet BER (``None`` when the receiver
        ran a hard-output decoder).
    bit_ber_estimates:
        Optional per-bit BER estimates (used by partial packet recovery).
    """

    def __init__(self, sequence, received_ok, pber_estimate=None, bit_ber_estimates=None):
        self.sequence = int(sequence)
        self.received_ok = bool(received_ok)
        self.pber_estimate = None if pber_estimate is None else float(pber_estimate)
        self.bit_ber_estimates = bit_ber_estimates

    def __repr__(self):
        return "Acknowledgement(seq=%d, ok=%s, pber=%s)" % (
            self.sequence,
            self.received_ok,
            "None" if self.pber_estimate is None else "%.3g" % self.pber_estimate,
        )
