"""Conventional stop-and-wait ARQ link layer.

This is the baseline the paper contrasts SoftPHY-driven schemes against:
"Conventional ARQ requires the retransmission of the entire packet in the
event of any bit error."  The implementation tracks how many transmissions
each packet needed and how many payload bits were sent in total, so the PPR
comparison can report its efficiency gain over whole-packet retransmission.
"""


class ArqStatistics:
    """Counters describing an ARQ session."""

    def __init__(self):
        self.packets_delivered = 0
        self.packets_abandoned = 0
        self.transmissions = 0
        self.payload_bits_delivered = 0
        self.bits_transmitted = 0

    @property
    def average_transmissions(self):
        """Mean number of transmissions per delivered packet."""
        if self.packets_delivered == 0:
            return 0.0
        return self.transmissions / self.packets_delivered

    @property
    def efficiency(self):
        """Delivered payload bits divided by transmitted bits."""
        if self.bits_transmitted == 0:
            return 0.0
        return self.payload_bits_delivered / self.bits_transmitted

    @property
    def delivery_rate(self):
        """Fraction of offered packets eventually delivered.

        Like the other ratio properties, a session that offered no
        traffic reads 0.0 rather than dividing by zero — empty sessions
        happen routinely when a harness filters its packet source.
        """
        offered = self.packets_delivered + self.packets_abandoned
        if offered == 0:
            return 0.0
        return self.packets_delivered / offered

    def __repr__(self):
        return (
            "ArqStatistics(delivered=%d, abandoned=%d, avg_tx=%.2f, efficiency=%.3f)"
            % (
                self.packets_delivered,
                self.packets_abandoned,
                self.average_transmissions,
                self.efficiency,
            )
        )


class ArqLinkLayer:
    """Stop-and-wait ARQ with a retransmission limit.

    Parameters
    ----------
    send:
        Callable ``(packet, attempt) -> bool`` that transmits the packet and
        returns whether it was received without error.  The evaluation
        harness and the examples plug a channel + receiver simulation in
        here.
    max_attempts:
        Transmissions allowed per packet before it is abandoned.
    """

    def __init__(self, send, max_attempts=7):
        if max_attempts < 1:
            raise ValueError("at least one attempt must be allowed")
        self.send = send
        self.max_attempts = int(max_attempts)
        self.statistics = ArqStatistics()

    def deliver(self, packet):
        """Transmit ``packet`` until acknowledged or the retry limit is hit.

        Returns ``True`` when the packet was delivered.
        """
        stats = self.statistics
        for attempt in range(1, self.max_attempts + 1):
            stats.transmissions += 1
            stats.bits_transmitted += packet.size_bits
            if self.send(packet, attempt):
                stats.packets_delivered += 1
                stats.payload_bits_delivered += packet.size_bits
                return True
        stats.packets_abandoned += 1
        return False

    def deliver_all(self, packets):
        """Deliver a sequence of packets; returns the number delivered."""
        return sum(1 for packet in packets if self.deliver(packet))
