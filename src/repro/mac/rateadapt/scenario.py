"""Declarative rate-adaptation scenarios for the experiment front door.

A BER curve asks "how often do bits flip at this operating point?"; a
rate-adaptation study asks "what did the controller *do* over this channel
realisation?".  The second question still decomposes into the first — the
expensive part is decoding every packet at every rate — so this module
reuses the whole declarative stack rather than growing a parallel one:

* :class:`RateAdaptScenario` is the frozen, content-hashable description
  of a closed-loop link (decoder, payload, SNR, Doppler, packet spacing).
  It implements the same protocol as
  :class:`~repro.analysis.scenario.Scenario` (``to_dict`` / ``from_dict``
  / ``content_hash`` / ``params`` / ``is_declarative``) and tags its
  serialised form with ``"kind": "rate_adapt"`` so the service's request
  layer can rebuild the right class from JSON.
* :class:`RateAdaptExperiment` wraps a plain
  :class:`~repro.analysis.scenario.Experiment` whose chunk-runner is
  :func:`~repro.mac.rateadapt.closedloop.run_rate_adapt_batch`: the decode
  runs at fixed depth through the adaptive path (``StopRule(max_packets=
  num_packets)``), so batches are content-addressed in the
  :class:`~repro.analysis.store.ResultStore`, shardable with any
  :class:`~repro.analysis.sweep.SweepExecutor`, and a warm rerun
  simulates zero packets.  Controllers are replayed over the decoded
  matrices *after* the sweep — one stored decode serves every controller,
  and adding a controller to the comparison costs no simulation at all.

The store-sharing consequence is worth spelling out: the store namespace
is a function of the scenario, constants, seed and batch quantum — not of
``num_packets`` (which lives in the stop rule) and not of the controller
list.  Asking for a longer trajectory resumes from the batches the shorter
run left behind; asking about a new controller is pure replay.
"""

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields

import numpy as np

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment
from repro.analysis.sweep import SweepSpec
from repro.mac.rateadapt.airtime import default_airtime_model
from repro.mac.rateadapt.closedloop import (PrecomputedOutcomes,
                                            oracle_trajectory,
                                            replay_trajectory,
                                            run_rate_adapt_batch)
from repro.mac.rateadapt.controllers import controller_from_dict
from repro.phy.params import RATE_TABLE

_NUMBER_TYPES = (int, float, np.integer, np.floating)


def _is_number(value):
    return isinstance(value, _NUMBER_TYPES) and not isinstance(value, bool)


@dataclass(frozen=True)
class RateAdaptScenario:
    """A validated, frozen description of one closed-loop link.

    Parameters
    ----------
    decoder:
        Decoder name (``"bcjr"``, ``"sova"``, ``"viterbi"``).  Required —
        the scenario must stay declarative for the store and the service.
    packet_bits:
        Payload bits per packet.  Required (never swept): the airtime
        pricing and the controllers' lossless-time tables assume one
        payload size per trajectory.
    snr_db:
        Mean AWGN SNR in dB, or ``None`` when ``snr_db`` is a sweep axis.
    doppler_hz:
        Fading Doppler frequency in Hz, or ``None`` when swept.
    packet_interval_s:
        Time between successive packet starts (sets how fast the channel
        decorrelates packet to packet).
    """

    #: ``to_dict()`` tag the service request layer dispatches on.
    KIND = "rate_adapt"

    decoder: object = "bcjr"
    packet_bits: object = 1704
    snr_db: object = 10.0
    doppler_hz: object = None
    packet_interval_s: object = 2e-3

    def __post_init__(self):
        if not isinstance(self.decoder, str) or not self.decoder:
            raise ValueError(
                "decoder must be a non-empty decoder name; got %r"
                % (self.decoder,))
        if not _is_number(self.packet_bits) or int(self.packet_bits) < 1 \
                or self.packet_bits != int(self.packet_bits):
            raise ValueError(
                "packet_bits must be a positive integer; got %r"
                % (self.packet_bits,))
        object.__setattr__(self, "packet_bits", int(self.packet_bits))
        if self.snr_db is not None and not _is_number(self.snr_db):
            raise ValueError("snr_db must be a number or None; got %r"
                             % (self.snr_db,))
        if self.doppler_hz is not None and not (
                _is_number(self.doppler_hz) and self.doppler_hz > 0):
            raise ValueError(
                "doppler_hz must be a positive number or None; got %r"
                % (self.doppler_hz,))
        if not (_is_number(self.packet_interval_s)
                and self.packet_interval_s > 0):
            raise ValueError(
                "packet_interval_s must be a positive number; got %r"
                % (self.packet_interval_s,))
        object.__setattr__(self, "packet_interval_s",
                           float(self.packet_interval_s))

    # -- the Scenario protocol ----------------------------------------- #
    @property
    def is_declarative(self):
        """Always true: every field is validated to a plain value."""
        return True

    def to_dict(self):
        """Canonical plain-data form, tagged with the scenario kind."""
        out = {"kind": self.KIND}
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, np.integer):
                value = int(value)
            elif isinstance(value, np.floating):
                value = float(value)
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a scenario from :meth:`to_dict` output."""
        data = dict(data)
        kind = data.pop("kind", cls.KIND)
        if kind != cls.KIND:
            raise ValueError("not a %r scenario dict (kind=%r)"
                             % (cls.KIND, kind))
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown RateAdaptScenario field(s): %s (known fields: %s)"
                % (", ".join(sorted(unknown)), ", ".join(sorted(known))))
        return cls(**data)

    def content_hash(self):
        """Canonical SHA-256 of the declarative form (store identity)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def params(self):
        """The sweep-constants dict this scenario contributes.

        ``None`` fields are omitted — they arrive per point, from the
        sweep axes.
        """
        out = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if value is not None:
                out[field.name] = value
        return out

    def replace(self, **changes):
        """A copy of this scenario with the given fields replaced."""
        return dataclasses.replace(self, **changes)


#: Default controller comparison: the paper's SoftRate plus the two
#: classic frame-level samplers, all over the full 8-rate table.
DEFAULT_CONTROLLERS = ("softrate", "samplerate", "minstrel")


def _default_controller_spec(name, packet_bits):
    """The canonical config dict for a named default controller."""
    if name == "softrate":
        from repro.mac.evaluation import SoftRateEvaluation
        from repro.mac.softrate import SoftRateController

        lower, upper = SoftRateEvaluation.DEFAULT_CONTROLLER_WINDOW
        return SoftRateController(lower_pber=lower, upper_pber=upper,
                                  backoff_packets=6).to_dict()
    if name == "samplerate":
        from repro.mac.rateadapt.controllers import SampleRateController

        return SampleRateController(packet_bits=packet_bits).to_dict()
    if name == "minstrel":
        from repro.mac.rateadapt.controllers import MinstrelController

        return MinstrelController(packet_bits=packet_bits).to_dict()
    raise ValueError("unknown default controller %r (known: %s)"
                     % (name, ", ".join(DEFAULT_CONTROLLERS)))


class RateAdaptExperiment:
    """Run controllers over a swept grid of closed-loop channels.

    Parameters
    ----------
    scenario:
        The :class:`RateAdaptScenario` under test; its ``None`` fields
        must arrive from ``axes``.
    axes:
        Mapping of axis name to operating-point values, e.g.
        ``{"doppler_hz": [10.0, 40.0]}``.
    num_packets:
        Trajectory length per point.  Lives in the stop rule, *not* the
        store namespace — a longer rerun resumes the shorter run's
        batches.
    batch_packets:
        Decode batch quantum (the store's unit of work).
    seed:
        Master sweep seed; each point derives its own stream from its
        coordinates, so trajectories are worker- and chunk-invariant.
    store:
        Optional :class:`~repro.analysis.store.ResultStore` for
        content-addressed resume.
    controllers:
        Controllers to replay: names from :data:`DEFAULT_CONTROLLERS`,
        ``to_dict()`` config dicts, or controller instances (converted to
        config dicts — a *fresh* controller is built per point, so one
        instance never leaks state across points).
    airtime:
        :class:`~repro.mac.rateadapt.airtime.AirtimeModel` used for
        scoring (defaults to the shared 802.11a model).
    """

    def __init__(self, scenario, axes, num_packets=200, batch_packets=32,
                 seed=0, store=None, controllers=None, airtime=None):
        if not isinstance(scenario, RateAdaptScenario):
            raise TypeError("scenario must be a RateAdaptScenario; got %r"
                            % (scenario,))
        self.scenario = scenario
        self.num_packets = int(num_packets)
        if self.num_packets < 1:
            raise ValueError("num_packets must be positive")
        self.airtime = airtime or default_airtime_model()
        self.controller_specs = [
            spec if isinstance(spec, dict)
            else _default_controller_spec(spec, scenario.packet_bits)
            if isinstance(spec, str) else spec.to_dict()
            for spec in (controllers or DEFAULT_CONTROLLERS)
        ]
        self.experiment = Experiment(
            scenario=scenario,
            sweep=SweepSpec(dict(axes), seed=seed),
            stop=StopRule(rel_half_width=None, min_errors=0,
                          max_packets=self.num_packets),
            store=store,
            runner=run_rate_adapt_batch,
            batch_packets=int(batch_packets),
        )

    @property
    def last_store_stats(self):
        """``{"hits", "misses"}`` of the last store-backed run."""
        return self.experiment.last_store_stats

    def store_digest(self):
        """The store namespace the decode batches are filed under."""
        return self.experiment.store_digest()

    def run(self, executor=None):
        """Sweep, replay every controller, and return flat metric rows.

        One row per (operating point, controller) plus one oracle row per
        point; each row carries the point's coordinates, the controller
        label, achieved/oracle airtime throughput and the Figure 7
        selection fractions.  Rows are bit-for-bit invariant to the
        executor, ``REPRO_SWEEP_WORKERS`` and the store temperature.
        """
        sweep_rows = self.experiment.run(executor=executor)
        rows = []
        for sweep_row in sweep_rows:
            # The stop rule caps traffic in whole batches, so a quantum
            # that does not divide num_packets decodes a partial extra
            # batch; trimming to the requested trajectory length is what
            # keeps the rows bit-for-bit invariant to batch_packets.
            success = np.asarray(sweep_row["success"],
                                 dtype=bool)[:self.num_packets]
            pber = np.asarray(sweep_row["pber_estimate"],
                              dtype=np.float64)[:self.num_packets]
            outcomes = PrecomputedOutcomes(success, pber, None)
            coords = {name: sweep_row[name]
                      for name in self.experiment.sweep.axes}
            oracle = oracle_trajectory(outcomes, self.scenario.packet_bits,
                                       rates=RATE_TABLE, airtime=self.airtime)
            point_rows = [oracle.row()]
            for spec in self.controller_specs:
                controller = controller_from_dict(spec)
                trajectory = replay_trajectory(
                    controller, outcomes, self.scenario.packet_bits,
                    airtime=self.airtime)
                point_rows.append(trajectory.row())
            outage = int((~success.any(axis=1)).sum())
            for row in point_rows:
                row.update(coords)
                row["oracle_mbps"] = oracle.achieved_mbps
                row["outage_packets"] = outage
                rows.append(row)
        return rows

    def __repr__(self):
        return ("RateAdaptExperiment(%r, packets=%d, controllers=%s)"
                % (self.scenario, self.num_packets,
                   [spec.get("type") for spec in self.controller_specs]))


__all__ = [
    "DEFAULT_CONTROLLERS",
    "RateAdaptExperiment",
    "RateAdaptScenario",
]
