"""802.11a/g frame-duration (airtime) model.

Comparing rate controllers by "fraction of packets delivered at the chosen
rate" flatters aggressive controllers: a failed 54 Mb/s attempt and a failed
6 Mb/s attempt cost the medium very different amounts of time.  The honest
scoreboard is *achieved throughput* — payload bits delivered divided by the
air time consumed — which is why every production rate-adaptation algorithm
(SampleRate, Minstrel) reasons in per-frame transmission times, not error
rates.  This module provides that clock.

The model follows the 802.11a OFDM PHY timing (802.11-2016 §17, also used
by 802.11g in pure-OFDM mode):

* A frame occupies ``preamble + SIGNAL`` (20 us) plus
  ``4 us * ceil((16 + length + 6) / N_DBPS)`` data symbols — the 16-bit
  SERVICE field and 6 tail bits ride inside the coded payload.
* A successful exchange is ``DIFS + backoff + DATA + SIFS + ACK``; the ACK
  (112 bits of MAC frame) goes out at the highest *mandatory* control rate
  (6, 12 or 24 Mb/s) not exceeding the data rate.
* Contention backoff is modelled by its expectation: the uniform draw from
  ``[0, CW]`` contributes ``CW/2`` slots, with ``CW`` starting at
  :attr:`cw_min` and doubling per retry up to :attr:`cw_max`.  Using the
  expectation (rather than sampling) keeps airtime a *pure function* of the
  (rate, payload, attempt) triple, which is what makes trajectory totals
  invariant to how a trajectory is chunked.

Deliberate simplifications, recorded here so the numbers can be audited: a
*failed* attempt is charged the same airtime as a successful one (the
transmitter still waits out SIFS + ACK-timeout, which 802.11 sizes to the
ACK duration), and MAC/PLCP header bytes beyond the SERVICE/tail overhead
are treated as part of the caller's payload length.
"""

import math

from repro.phy.params import RATE_TABLE, SYMBOL_DURATION_US, rate_by_mbps

#: PLCP preamble (two training sequences, 16 us) plus the SIGNAL symbol.
PLCP_PREAMBLE_US = 16.0
PLCP_SIGNAL_US = 4.0

#: SERVICE field and convolutional-code tail bits carried in the DATA field.
SERVICE_BITS = 16
TAIL_BITS = 6

#: An ACK MAC frame: 2+2+6 header bytes + 4 FCS bytes = 14 bytes.
ACK_BITS = 112

#: 802.11a/g mandatory control rates an ACK may use, in Mb/s.
CONTROL_RATES_MBPS = (6.0, 12.0, 24.0)


class AirtimeModel:
    """Per-frame 802.11a/g airtime accounting.

    Parameters
    ----------
    slot_us, sifs_us:
        Slot time and SIFS for the OFDM PHY (9 us and 16 us; DIFS is
        derived as ``SIFS + 2 * slot``).
    cw_min, cw_max:
        Contention-window bounds (802.11a: 15 and 1023).  The backoff
        charged for attempt ``a`` is the expectation
        ``min((cw_min + 1) << a, cw_max + 1) - 1) / 2`` slots.
    include_backoff:
        Set ``False`` to model a contention-free link (point coordinator /
        single station): DIFS is still charged, backoff is not.
    """

    def __init__(self, slot_us=9.0, sifs_us=16.0, cw_min=15, cw_max=1023,
                 include_backoff=True):
        if slot_us <= 0 or sifs_us <= 0:
            raise ValueError("slot_us and sifs_us must be positive")
        if not 0 < cw_min <= cw_max:
            raise ValueError("need 0 < cw_min <= cw_max")
        if (cw_min + 1) & cw_min or (cw_max + 1) & cw_max:
            raise ValueError("cw_min and cw_max must be 2**n - 1")
        self.slot_us = float(slot_us)
        self.sifs_us = float(sifs_us)
        self.cw_min = int(cw_min)
        self.cw_max = int(cw_max)
        self.include_backoff = bool(include_backoff)

    # ------------------------------------------------------------------ #
    # Components
    # ------------------------------------------------------------------ #
    @property
    def difs_us(self):
        """DCF interframe space: SIFS plus two slot times (34 us)."""
        return self.sifs_us + 2.0 * self.slot_us

    def data_duration_us(self, rate, payload_bits):
        """On-air duration of one data frame at ``rate``.

        ``payload_bits`` is the PSDU length in bits; SERVICE and tail bits
        are added here, then padded up to a whole number of OFDM symbols.
        """
        if payload_bits < 1:
            raise ValueError("payload_bits must be positive")
        symbols = math.ceil(
            (SERVICE_BITS + int(payload_bits) + TAIL_BITS)
            / rate.data_bits_per_symbol)
        return PLCP_PREAMBLE_US + PLCP_SIGNAL_US + SYMBOL_DURATION_US * symbols

    def ack_rate_for(self, rate):
        """The mandatory control rate the ACK answers ``rate`` at."""
        best = CONTROL_RATES_MBPS[0]
        for candidate in CONTROL_RATES_MBPS:
            if candidate <= rate.data_rate_mbps:
                best = candidate
        return rate_by_mbps(best)

    def ack_duration_us(self, rate):
        """On-air duration of the ACK acknowledging a frame sent at ``rate``."""
        return self.data_duration_us(self.ack_rate_for(rate), ACK_BITS)

    def expected_backoff_us(self, attempt=0):
        """Expected contention backoff before transmission ``attempt``.

        Attempt 0 is the first transmission (CW = ``cw_min``); each retry
        doubles the window up to ``cw_max``.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        if not self.include_backoff:
            return 0.0
        cw = min((self.cw_min + 1) << attempt, self.cw_max + 1) - 1
        return 0.5 * cw * self.slot_us

    # ------------------------------------------------------------------ #
    # Whole exchanges
    # ------------------------------------------------------------------ #
    def packet_airtime_us(self, rate, payload_bits, attempt=0):
        """Airtime of one DATA/ACK exchange at ``rate``.

        ``DIFS + E[backoff(attempt)] + DATA + SIFS + ACK``.  A failed
        attempt costs the same (the ACK term then models the ACK-timeout
        wait, which 802.11 sizes to the ACK duration).
        """
        return (self.difs_us
                + self.expected_backoff_us(attempt)
                + self.data_duration_us(rate, payload_bits)
                + self.sifs_us
                + self.ack_duration_us(rate))

    def lossless_tx_us(self, rate, payload_bits):
        """Best-case airtime at ``rate``: one first-attempt exchange.

        This is SampleRate's "lossless transmission time" — the quantity
        its per-rate EWMA is initialised to and its probe candidates are
        screened against.
        """
        return self.packet_airtime_us(rate, payload_bits, attempt=0)

    def throughput_mbps(self, rate, payload_bits):
        """Saturation throughput at ``rate``: payload over lossless airtime.

        Bits per microsecond equals Mb/s exactly, so no unit conversion
        appears at call sites.
        """
        return payload_bits / self.lossless_tx_us(rate, payload_bits)

    # ------------------------------------------------------------------ #
    # Serialisation (scenario hashing)
    # ------------------------------------------------------------------ #
    def to_dict(self):
        return {
            "slot_us": self.slot_us,
            "sifs_us": self.sifs_us,
            "cw_min": self.cw_min,
            "cw_max": self.cw_max,
            "include_backoff": self.include_backoff,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**dict(data))

    def __eq__(self, other):
        if not isinstance(other, AirtimeModel):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self):
        return ("AirtimeModel(slot_us=%g, sifs_us=%g, cw=[%d, %d], "
                "include_backoff=%r)"
                % (self.slot_us, self.sifs_us, self.cw_min, self.cw_max,
                   self.include_backoff))


def default_airtime_model():
    """The shared default :class:`AirtimeModel` (802.11a constants)."""
    return AirtimeModel()


__all__ = [
    "ACK_BITS",
    "AirtimeModel",
    "CONTROL_RATES_MBPS",
    "PLCP_PREAMBLE_US",
    "PLCP_SIGNAL_US",
    "SERVICE_BITS",
    "TAIL_BITS",
    "default_airtime_model",
]
