"""The ``RateController`` protocol and the classic 802.11 controllers.

SoftRate (the paper's Figure 7) is one point in the rate-adaptation design
space; the controllers every shipping 802.11 stack actually used are
frame-level samplers.  This module defines the protocol that lets them all
drive the same closed-loop link, and implements the two classics:

* :class:`SampleRateController` — Bicket's SampleRate (MIT, 2005): keep a
  per-rate EWMA of the *transmission time per delivered packet* (failed
  attempts charge their airtime to the next success), transmit at the rate
  whose average is lowest, and periodically probe other rates whose
  best-case (lossless) time could beat the incumbent.
* :class:`MinstrelController` — the Linux mac80211 sampler: keep a per-rate
  EWMA of delivery *probability*, rank rates by ``probability x
  payload / lossless_airtime`` throughput, transmit at the best and devote
  a fixed fraction of packets to sampling other rates; expose the
  max-throughput / second-best / best-probability / lowest retry chain.

The protocol (everything the closed-loop driver and the declarative layer
need):

``choose() -> rate_index``
    The rate for the next packet.  **Pure** — calling it twice without an
    intervening ``observe`` returns the same index.  All state transitions
    live in ``observe``, so a driver can never corrupt a controller by
    peeking.
``observe(feedback) -> None``
    Consume one packet's :class:`RateFeedback`.
``reset() -> None``
    Return to the initial state.
``to_dict() / from_dict``
    Canonical plain-data *configuration* (not runtime state) round-trip —
    the identity under which trajectories are hashed into the result
    store.  Dispatch is by the dict's ``"type"`` tag via
    :func:`controller_from_dict`.

Determinism is a hard requirement here, not a nicety: trajectories must be
bit-for-bit reproducible across runs, worker counts and chunk sizes, so the
"random" sampling both classic controllers rely on is derived from counters
with :func:`zlib.crc32` rather than from any global RNG.
"""

import zlib

from repro.mac.rateadapt.airtime import default_airtime_model
from repro.phy.params import RATE_TABLE, rate_by_mbps


class RateFeedback:
    """What the link layer learns from one packet exchange.

    Parameters
    ----------
    rate_index:
        Index (into the controller's rate table) the packet was sent at.
    success:
        Whether the packet was acknowledged.
    pber_estimate:
        SoftPHY predicted per-packet BER at the transmission rate, or
        ``None`` when no estimate is available (conventional hard-decision
        feedback, or the packet was lost outright).
    airtime_us:
        Airtime the attempt consumed (successful or not).
    """

    __slots__ = ("rate_index", "success", "pber_estimate", "airtime_us")

    def __init__(self, rate_index, success, pber_estimate=None, airtime_us=0.0):
        self.rate_index = int(rate_index)
        self.success = bool(success)
        self.pber_estimate = None if pber_estimate is None else float(pber_estimate)
        self.airtime_us = float(airtime_us)

    def __repr__(self):
        return ("RateFeedback(rate_index=%d, success=%r, pber=%r, "
                "airtime_us=%.1f)" % (self.rate_index, self.success,
                                      self.pber_estimate, self.airtime_us))


class RateController:
    """Base class fixing the controller protocol over a rate table."""

    #: ``to_dict()`` tag; subclasses must override.
    kind = None

    def __init__(self, rates=RATE_TABLE):
        self.rates = tuple(rates)
        if not self.rates:
            raise ValueError("the rate table must not be empty")

    # -- protocol ------------------------------------------------------ #
    def choose(self):
        """Index of the rate the next packet should be sent at (pure)."""
        raise NotImplementedError

    def observe(self, feedback):
        """Consume one packet's :class:`RateFeedback`."""
        raise NotImplementedError

    def reset(self):
        """Return to the initial state."""
        raise NotImplementedError

    def to_dict(self):
        """Canonical plain-data configuration (JSON-able)."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------ #
    @property
    def current_rate(self):
        """The :class:`~repro.phy.params.PhyRate` of :meth:`choose`."""
        return self.rates[self.choose()]

    def _rates_mbps(self):
        return [rate.data_rate_mbps for rate in self.rates]

    @staticmethod
    def _rates_from_dict(data):
        mbps = data.pop("rates_mbps", None)
        if mbps is None:
            return RATE_TABLE
        return tuple(rate_by_mbps(value) for value in mbps)


class SampleRateController(RateController):
    """Bicket's SampleRate: minimise EWMA transmission time per delivery.

    Parameters
    ----------
    rates:
        Ordered rate table to adapt over.
    packet_bits:
        Payload size the airtime accounting assumes (the closed-loop
        driver feeds actual per-packet airtimes; this sizes the lossless
        reference times used for probe screening and initialisation).
    ewma_weight:
        Weight of the *old* average in the EWMA update (0.75 keeps 75% of
        history per sample, SampleRate's choice).
    probe_interval:
        Every ``probe_interval``-th packet is a probe at a candidate rate
        whose lossless time could beat the incumbent's average.
    max_successive_failures:
        A rate with this many successive failed packets is excluded from
        both transmission and probing until its counter is aged out.
    stats_window:
        Every ``stats_window`` packets the successive-failure counters are
        cleared, so a rate that failed during a deep fade becomes eligible
        again (SampleRate ages its statistics over a 10 s window; packets
        are this reproduction's clock).
    airtime:
        The :class:`~repro.mac.rateadapt.airtime.AirtimeModel` that prices
        lossless transmissions (defaults to the shared 802.11a model).
    """

    kind = "samplerate"

    def __init__(self, rates=RATE_TABLE, packet_bits=1704, ewma_weight=0.75,
                 probe_interval=10, max_successive_failures=4,
                 stats_window=200, airtime=None):
        super().__init__(rates)
        if not 0.0 <= ewma_weight < 1.0:
            raise ValueError("ewma_weight must be in [0, 1)")
        if probe_interval < 2:
            raise ValueError("probe_interval must be at least 2")
        if max_successive_failures < 1:
            raise ValueError("max_successive_failures must be positive")
        if stats_window < 1:
            raise ValueError("stats_window must be positive")
        self.packet_bits = int(packet_bits)
        self.ewma_weight = float(ewma_weight)
        self.probe_interval = int(probe_interval)
        self.max_successive_failures = int(max_successive_failures)
        self.stats_window = int(stats_window)
        self.airtime = airtime or default_airtime_model()
        self._lossless_us = [
            self.airtime.lossless_tx_us(rate, self.packet_bits)
            for rate in self.rates]
        self.reset()

    def reset(self):
        n = len(self.rates)
        self.decisions = 0
        # EWMA tx time per delivered packet, optimistically initialised to
        # the lossless time so every rate starts worth trying and the
        # controller opens at the nominally fastest rate.
        self._avg_tx_us = list(self._lossless_us)
        self._measured = [False] * n
        self._successive_failures = [0] * n
        # Airtime burnt on failures since the last delivery at each rate;
        # charged to the next success there (SampleRate's accounting).
        self._pending_tx_us = [0.0] * n

    # ------------------------------------------------------------------ #
    def _excluded(self, index):
        return self._successive_failures[index] >= self.max_successive_failures

    def _best_index(self):
        """The non-excluded rate with the lowest average tx time."""
        best = None
        for index in range(len(self.rates)):
            if self._excluded(index):
                continue
            if best is None or self._avg_tx_us[index] < self._avg_tx_us[best]:
                best = index
        # Every rate excluded: fall back to the most robust one.
        return 0 if best is None else best

    def _probe_candidates(self, best):
        """Rates whose best case could beat the incumbent's average."""
        return [index for index in range(len(self.rates))
                if index != best and not self._excluded(index)
                and self._lossless_us[index] < self._avg_tx_us[best]]

    def choose(self):
        best = self._best_index()
        # Deterministic probing: packet numbers decisions+1 that are
        # multiples of probe_interval are probes, cycling through the
        # candidate list.  Derived from the observation counter only, so
        # choose() stays pure.
        packet_number = self.decisions + 1
        if packet_number % self.probe_interval == 0:
            candidates = self._probe_candidates(best)
            if candidates:
                probe_number = packet_number // self.probe_interval
                return candidates[(probe_number - 1) % len(candidates)]
        return best

    def observe(self, feedback):
        index = feedback.rate_index
        if not 0 <= index < len(self.rates):
            raise ValueError("rate_index %d outside the rate table" % index)
        self.decisions += 1
        if feedback.success:
            sample = feedback.airtime_us + self._pending_tx_us[index]
            self._pending_tx_us[index] = 0.0
            self._successive_failures[index] = 0
            if self._measured[index]:
                w = self.ewma_weight
                self._avg_tx_us[index] = (
                    w * self._avg_tx_us[index] + (1.0 - w) * sample)
            else:
                self._avg_tx_us[index] = sample
                self._measured[index] = True
        else:
            self._pending_tx_us[index] += feedback.airtime_us
            self._successive_failures[index] += 1
        if self.decisions % self.stats_window == 0:
            # Age out exclusions so a post-fade channel gets re-probed.
            self._successive_failures = [0] * len(self.rates)

    # ------------------------------------------------------------------ #
    def to_dict(self):
        return {
            "type": self.kind,
            "rates_mbps": self._rates_mbps(),
            "packet_bits": self.packet_bits,
            "ewma_weight": self.ewma_weight,
            "probe_interval": self.probe_interval,
            "max_successive_failures": self.max_successive_failures,
            "stats_window": self.stats_window,
            "airtime": self.airtime.to_dict(),
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        if data.pop("type", cls.kind) != cls.kind:
            raise ValueError("not a %r controller dict" % cls.kind)
        rates = cls._rates_from_dict(data)
        airtime = data.pop("airtime", None)
        if isinstance(airtime, dict):
            from repro.mac.rateadapt.airtime import AirtimeModel

            airtime = AirtimeModel.from_dict(airtime)
        return cls(rates=rates, airtime=airtime, **data)

    def __repr__(self):
        return ("SampleRateController(rate=%s, probe_interval=%d)"
                % (self.rates[self.choose()].name, self.probe_interval))


class MinstrelController(RateController):
    """Minstrel-style sampler: EWMA success probability, throughput ranking.

    Parameters
    ----------
    rates, packet_bits, airtime:
        As for :class:`SampleRateController`.
    ewma_weight:
        Weight of the old value in the per-rate success-probability EWMA.
    sample_interval:
        Every ``sample_interval``-th packet samples a pseudo-randomly
        chosen rate instead of the max-throughput one (Minstrel's "look
        around" ~10% of frames).
    seed:
        Seed for the deterministic sampling sequence.  The sequence is a
        pure function of ``(seed, sample counter)`` via CRC32, so
        trajectories are reproducible without any global RNG.
    """

    kind = "minstrel"

    def __init__(self, rates=RATE_TABLE, packet_bits=1704, ewma_weight=0.75,
                 sample_interval=10, seed=0, airtime=None):
        super().__init__(rates)
        if not 0.0 <= ewma_weight < 1.0:
            raise ValueError("ewma_weight must be in [0, 1)")
        if sample_interval < 2:
            raise ValueError("sample_interval must be at least 2")
        self.packet_bits = int(packet_bits)
        self.ewma_weight = float(ewma_weight)
        self.sample_interval = int(sample_interval)
        self.seed = int(seed)
        self.airtime = airtime or default_airtime_model()
        self._lossless_us = [
            self.airtime.lossless_tx_us(rate, self.packet_bits)
            for rate in self.rates]
        self.reset()

    def reset(self):
        n = len(self.rates)
        self.decisions = 0
        # Unattempted rates are treated as probability 1.0 (optimistic
        # initialisation, like SampleRate's lossless times) until sampled.
        self._prob = [1.0] * n
        self._attempted = [False] * n
        self.attempts = [0] * n
        self.successes = [0] * n

    # ------------------------------------------------------------------ #
    def success_probability(self, index):
        """Current EWMA delivery probability estimate for a rate."""
        return self._prob[index]

    def throughput_estimate(self, index):
        """Expected Mb/s at a rate: probability x payload / lossless time."""
        return self._prob[index] * self.packet_bits / self._lossless_us[index]

    def _ranked(self):
        """Rate indices sorted by throughput estimate, best first.

        Ties break towards the more robust (lower) rate, which also makes
        the ranking independent of Python's sort stability details.
        """
        return sorted(range(len(self.rates)),
                      key=lambda i: (-self.throughput_estimate(i), i))

    def _best_probability_index(self):
        return max(range(len(self.rates)),
                   key=lambda i: (self._prob[i], -i))

    def retry_chain(self):
        """Minstrel's retry chain for the next packet.

        ``[max throughput, second-best throughput, best probability,
        lowest]`` with duplicates removed, order preserved — what a real
        MAC would program into the hardware's multi-rate-retry registers.
        """
        ranked = self._ranked()
        chain = [ranked[0]]
        if len(ranked) > 1:
            chain.append(ranked[1])
        chain.append(self._best_probability_index())
        chain.append(0)
        seen = []
        for index in chain:
            if index not in seen:
                seen.append(index)
        return seen

    def _sample_index(self, sample_number):
        token = b"minstrel:%d:%d" % (self.seed, sample_number)
        return zlib.crc32(token) % len(self.rates)

    def choose(self):
        best = self._ranked()[0]
        packet_number = self.decisions + 1
        if packet_number % self.sample_interval == 0:
            sample = self._sample_index(packet_number // self.sample_interval)
            if sample != best:
                return sample
        return best

    def observe(self, feedback):
        index = feedback.rate_index
        if not 0 <= index < len(self.rates):
            raise ValueError("rate_index %d outside the rate table" % index)
        self.decisions += 1
        self.attempts[index] += 1
        sample = 1.0 if feedback.success else 0.0
        if feedback.success:
            self.successes[index] += 1
        if self._attempted[index]:
            w = self.ewma_weight
            self._prob[index] = w * self._prob[index] + (1.0 - w) * sample
        else:
            self._prob[index] = sample
            self._attempted[index] = True

    # ------------------------------------------------------------------ #
    def to_dict(self):
        return {
            "type": self.kind,
            "rates_mbps": self._rates_mbps(),
            "packet_bits": self.packet_bits,
            "ewma_weight": self.ewma_weight,
            "sample_interval": self.sample_interval,
            "seed": self.seed,
            "airtime": self.airtime.to_dict(),
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        if data.pop("type", cls.kind) != cls.kind:
            raise ValueError("not a %r controller dict" % cls.kind)
        rates = cls._rates_from_dict(data)
        airtime = data.pop("airtime", None)
        if isinstance(airtime, dict):
            from repro.mac.rateadapt.airtime import AirtimeModel

            airtime = AirtimeModel.from_dict(airtime)
        return cls(rates=rates, airtime=airtime, **data)

    def __repr__(self):
        return ("MinstrelController(rate=%s, sample_interval=%d)"
                % (self.rates[self.choose()].name, self.sample_interval))


def controller_from_dict(data):
    """Rebuild any registered controller from its ``to_dict()`` form.

    Dispatches on the ``"type"`` tag.  The SoftRate entry resolves lazily
    (``repro.mac.softrate`` imports this module for the base class).
    """
    data = dict(data)
    kind = data.get("type")
    if kind == SampleRateController.kind:
        return SampleRateController.from_dict(data)
    if kind == MinstrelController.kind:
        return MinstrelController.from_dict(data)
    if kind == "softrate":
        from repro.mac.softrate import SoftRateController

        return SoftRateController.from_dict(data)
    raise ValueError(
        "unknown controller type %r (known: samplerate, minstrel, softrate)"
        % (kind,))


def optimal_rate_index(per_rate_success):
    """Index of the highest rate that delivered the packet without error.

    ``per_rate_success`` is a boolean sequence ordered like the rate table.
    When no rate succeeds the most robust (lowest) rate is considered
    optimal, matching the convention used in the Figure 7 evaluation.
    """
    best = 0
    found = False
    for index, success in enumerate(per_rate_success):
        if success:
            best = index
            found = True
    return best if found else 0


def classify_selection(chosen_index, optimal_index):
    """Classify a rate choice as ``"underselect"``, ``"accurate"`` or ``"overselect"``."""
    if chosen_index < optimal_index:
        return "underselect"
    if chosen_index > optimal_index:
        return "overselect"
    return "accurate"


__all__ = [
    "MinstrelController",
    "RateController",
    "RateFeedback",
    "SampleRateController",
    "classify_selection",
    "controller_from_dict",
    "optimal_rate_index",
]
