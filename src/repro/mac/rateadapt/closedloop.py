"""Closed-loop rate-adaptation trajectories over a time-varying channel.

The expensive part of comparing rate controllers is not the controllers —
it is decoding every packet at every rate so that any controller's choice
(and the per-packet *optimal* rate) can be scored against the same channel
realisation.  This module splits the problem the same way the Figure 7
evaluation does, but makes both halves first-class and chunkable:

* :meth:`ClosedLoopLink.decode_window` produces the rate-major
  ``(packets, rates)`` outcome matrices for an arbitrary *window* of the
  packet stream.  Every per-packet quantity is a pure function of the
  absolute packet index — payloads and noise through
  :class:`~repro.channel.reproducible.ReproducibleNoise`, fading through
  the absolute transmission time handed to
  :class:`~repro.channel.fading.JakesFadingProcess` — so decoding packets
  ``[0, 12)`` in one window or in three windows of four yields bit-for-bit
  identical matrices.  That property is what lets
  :func:`run_rate_adapt_batch` serve as an adaptive chunk-runner whose
  batches are content-addressed units of work in the result store.
* :func:`replay_trajectory` runs any
  :class:`~repro.mac.rateadapt.controllers.RateController` packet-by-packet
  over decoded outcome matrices — cheap, sequential and deterministic, so
  controllers are a *replay-layer* concern: one stored decode serves every
  controller, and a warm store rerun simulates zero packets no matter how
  many controllers are compared.

Scoring uses the :mod:`~repro.mac.rateadapt.airtime` model: a trajectory's
achieved throughput is payload bits delivered over airtime consumed, the
only scoreboard on which a failed 54 Mb/s gamble and a timid 6 Mb/s crawl
are priced honestly against each other.
"""

import numpy as np

from repro.analysis.link import LinkRunResult
from repro.channel.awgn import awgn
from repro.channel.fading import JakesFadingProcess
from repro.channel.reproducible import ReproducibleNoise
from repro.mac.rateadapt.airtime import default_airtime_model
from repro.mac.rateadapt.controllers import (RateFeedback, classify_selection,
                                             optimal_rate_index)
from repro.phy.params import RATE_TABLE
from repro.phy.receiver import Receiver
from repro.phy.transmitter import Transmitter
from repro.softphy.ber_estimator import BerEstimator


class PrecomputedOutcomes:
    """Per-packet, per-rate decode outcomes used by controller replay.

    Attributes
    ----------
    success:
        ``(packets, rates)`` boolean: decoded without any bit error.
    pber_estimate:
        ``(packets, rates)`` predicted per-packet BER from the SoftPHY
        hints.
    pber_actual:
        ``(packets, rates)`` ground-truth per-packet BER.
    """

    def __init__(self, success, pber_estimate, pber_actual):
        self.success = success
        self.pber_estimate = pber_estimate
        self.pber_actual = pber_actual

    @property
    def num_packets(self):
        return self.success.shape[0]

    @property
    def num_rates(self):
        return self.success.shape[1]


class LinkTrajectory:
    """One controller's packet-by-packet run over a channel realisation.

    Attributes
    ----------
    name:
        Controller label (``"softrate"``, ``"samplerate"``, ...).
    chosen_indices, optimal_indices:
        Per-packet chosen and oracle-optimal rate indices.
    delivered:
        Per-packet boolean: the packet decoded cleanly at the chosen rate.
    airtime_us:
        Per-packet airtime consumed (successful or not).
    """

    def __init__(self, name, chosen_indices, optimal_indices, delivered,
                 airtime_us, packet_bits, rates):
        self.name = str(name)
        self.chosen_indices = np.asarray(chosen_indices, dtype=np.int64)
        self.optimal_indices = np.asarray(optimal_indices, dtype=np.int64)
        self.delivered = np.asarray(delivered, dtype=bool)
        self.airtime_us = np.asarray(airtime_us, dtype=np.float64)
        self.packet_bits = int(packet_bits)
        self.rates = tuple(rates)

    @property
    def num_packets(self):
        return int(self.chosen_indices.size)

    @property
    def delivered_packets(self):
        return int(self.delivered.sum())

    @property
    def total_airtime_us(self):
        return float(self.airtime_us.sum())

    @property
    def achieved_mbps(self):
        """Payload bits delivered per microsecond of airtime (== Mb/s)."""
        total = self.total_airtime_us
        if total == 0.0:
            return 0.0
        return self.delivered_packets * self.packet_bits / total

    def selection_fractions(self):
        """Figure 7 vocabulary: underselect / accurate / overselect."""
        if self.num_packets == 0:
            return {"underselect": 0.0, "accurate": 0.0, "overselect": 0.0}
        chosen, optimal = self.chosen_indices, self.optimal_indices
        n = float(self.num_packets)
        return {
            "underselect": float((chosen < optimal).sum()) / n,
            "accurate": float((chosen == optimal).sum()) / n,
            "overselect": float((chosen > optimal).sum()) / n,
        }

    def row(self):
        """Flat JSON-able metrics row (for benchmarks and the service)."""
        row = {
            "controller": self.name,
            "packets": self.num_packets,
            "delivered_packets": self.delivered_packets,
            "total_airtime_us": self.total_airtime_us,
            "achieved_mbps": self.achieved_mbps,
        }
        row.update(self.selection_fractions())
        return row

    def __repr__(self):
        return ("LinkTrajectory(%s, packets=%d, achieved=%.2f Mb/s)"
                % (self.name, self.num_packets, self.achieved_mbps))


def replay_trajectory(controller, outcomes, packet_bits, airtime=None,
                      name=None):
    """Run ``controller`` packet-by-packet over decoded ``outcomes``.

    The controller chooses a rate, the outcome matrices say whether that
    rate would have delivered the packet and what the SoftPHY hint was,
    and the airtime model prices the attempt.  Deterministic and cheap —
    the decode cost was paid (once, possibly from the store) in
    :meth:`ClosedLoopLink.decode_window`.
    """
    if len(controller.rates) != outcomes.num_rates:
        raise ValueError(
            "controller adapts over %d rates but the outcomes were decoded "
            "at %d" % (len(controller.rates), outcomes.num_rates))
    airtime = airtime or default_airtime_model()
    n = outcomes.num_packets
    chosen_indices = np.empty(n, dtype=np.int64)
    optimal_indices = np.empty(n, dtype=np.int64)
    delivered = np.empty(n, dtype=bool)
    airtime_us = np.empty(n, dtype=np.float64)
    for index in range(n):
        chosen = controller.choose()
        chosen_indices[index] = chosen
        optimal_indices[index] = optimal_rate_index(outcomes.success[index])
        success = bool(outcomes.success[index, chosen])
        delivered[index] = success
        cost = airtime.packet_airtime_us(controller.rates[chosen], packet_bits)
        airtime_us[index] = cost
        controller.observe(RateFeedback(
            chosen, success,
            pber_estimate=float(outcomes.pber_estimate[index, chosen]),
            airtime_us=cost,
        ))
    return LinkTrajectory(
        name if name is not None else getattr(controller, "kind", None)
        or type(controller).__name__,
        chosen_indices, optimal_indices, delivered, airtime_us,
        packet_bits, controller.rates,
    )


def oracle_trajectory(outcomes, packet_bits, rates=RATE_TABLE, airtime=None):
    """The per-packet oracle: always transmit at the optimal rate.

    When no rate delivers the packet the oracle still pays the most robust
    rate's airtime for the failed attempt, so its throughput is an honest
    upper bound, not an artifact of skipping doomed packets.
    """
    airtime = airtime or default_airtime_model()
    n = outcomes.num_packets
    chosen_indices = np.empty(n, dtype=np.int64)
    delivered = np.empty(n, dtype=bool)
    airtime_us = np.empty(n, dtype=np.float64)
    for index in range(n):
        optimal = optimal_rate_index(outcomes.success[index])
        chosen_indices[index] = optimal
        delivered[index] = bool(outcomes.success[index, optimal])
        airtime_us[index] = airtime.packet_airtime_us(rates[optimal],
                                                      packet_bits)
    return LinkTrajectory("oracle", chosen_indices, chosen_indices.copy(),
                          delivered, airtime_us, packet_bits, rates)


class ClosedLoopLink:
    """A packet stream over a fading link, decodable window by window.

    Parameters
    ----------
    snr_db:
        Mean AWGN SNR (10 dB in the paper's Figure 7).
    doppler_hz:
        Fading Doppler frequency.
    packet_bits:
        Payload size per packet.
    packet_interval_s:
        Time between successive packet starts — the knob that sets how
        fast the channel decorrelates between packets.
    seed:
        Master seed for payloads, noise and the fading trace.
    rates:
        Rate table the stream is decoded against.
    decoder:
        Decoder name (``"bcjr"``, ``"sova"``, ``"viterbi"``).
    """

    def __init__(self, snr_db=10.0, doppler_hz=20.0, packet_bits=1704,
                 packet_interval_s=2e-3, seed=0, rates=RATE_TABLE,
                 decoder="bcjr"):
        self.snr_db = float(snr_db)
        self.doppler_hz = float(doppler_hz)
        self.packet_bits = int(packet_bits)
        self.packet_interval_s = float(packet_interval_s)
        self.seed = seed
        self.rates = tuple(rates)
        self.decoder = decoder
        self.noise = ReproducibleNoise(seed)
        self.fading = JakesFadingProcess(doppler_hz=doppler_hz, seed=seed)

    def gains(self, first_index, num_packets):
        """Fading gains for a window of absolute packet indices.

        A pure function of absolute transmission times, so windows tile:
        ``gains(0, 12) == concat(gains(0, 4), gains(4, 4), gains(8, 4))``
        bit for bit.
        """
        times = ((first_index + np.arange(num_packets))
                 * self.packet_interval_s)
        return np.atleast_1d(self.fading.gain(times))

    def decode_window(self, first_index, num_packets, batch_size=16,
                      estimator=None):
        """Decode packets ``[first_index, first_index + num_packets)`` at
        every rate.

        Returns :class:`PrecomputedOutcomes` whose rows depend only on
        each packet's absolute index — never on the window bounds or
        ``batch_size`` — which is the chunk-invariance contract the store
        and the sweep executor rely on.
        """
        estimator = estimator or BerEstimator(self.decoder)
        gains = self.gains(first_index, num_packets)
        success = np.zeros((num_packets, len(self.rates)), dtype=bool)
        pber_estimate = np.ones((num_packets, len(self.rates)))
        pber_actual = np.ones((num_packets, len(self.rates)))

        for rate_idx, rate in enumerate(self.rates):
            transmitter = Transmitter(rate)
            receiver = Receiver(rate, decoder=self.decoder)
            geometry = receiver.geometry(self.packet_bits)
            for first in range(0, num_packets, batch_size):
                count = min(batch_size, num_packets - first)
                tx_bits = np.empty((count, self.packet_bits), dtype=np.uint8)
                softs = []
                for offset in range(count):
                    row = first + offset
                    index = first_index + row
                    payload = self.noise.payload(index, self.packet_bits)
                    tx_bits[offset] = payload
                    samples = transmitter.transmit(payload)
                    gain = gains[row]
                    rng = self.noise.rng_for(index, purpose="noise")
                    received = awgn(samples * gain, self.snr_db, rng=rng)
                    csi = np.full(geometry.num_symbols, np.abs(gain) ** 2)
                    softs.append(
                        receiver.front_end(
                            received,
                            self.packet_bits,
                            channel_gain=gain,
                            csi_weights=csi,
                        )
                    )
                decoded = receiver.decode_batch(np.vstack(softs),
                                                self.packet_bits)
                run = LinkRunResult(tx_bits, decoded.bits, decoded.llr, None)
                rows = slice(first, first + count)
                success[rows, rate_idx] = ~run.packet_errors
                pber_actual[rows, rate_idx] = run.packet_ber
                if decoded.llr is not None:
                    pber_estimate[rows, rate_idx] = estimator.packet_ber(
                        np.abs(decoded.llr), rate.modulation
                    )
        return PrecomputedOutcomes(success, pber_estimate, pber_actual)

    def run(self, controller, num_packets, first_index=0, batch_size=16,
            airtime=None, name=None):
        """Decode a window and replay ``controller`` over it."""
        outcomes = self.decode_window(first_index, num_packets,
                                      batch_size=batch_size)
        return replay_trajectory(controller, outcomes, self.packet_bits,
                                 airtime=airtime, name=name)

    def __repr__(self):
        return ("ClosedLoopLink(snr_db=%.1f, doppler_hz=%.1f, decoder=%s, "
                "packet_bits=%d)" % (self.snr_db, self.doppler_hz,
                                     self.decoder, self.packet_bits))


def run_rate_adapt_batch(batch):
    """Adaptive chunk-runner: decode one batch of the packet stream.

    The content-addressed unit of work behind
    :class:`~repro.mac.rateadapt.scenario.RateAdaptScenario` experiments.
    Batch ``k`` of a trajectory with quantum ``q`` decodes absolute packets
    ``[k*q, (k+1)*q)``; the master seed is the point's derived seed, so the
    decoded matrices are a pure function of ``(spec entropy, coordinates,
    batch index)`` — bit-for-bit invariant to executors, worker counts and
    round scheduling, and safely shareable across every controller and
    every stop rule.

    Returns the adaptive vocabulary: ``errors`` counts *outage* packets
    (no rate delivered them — so the row's ``ber`` reads as outage
    probability), ``trials`` the packets decoded, and the per-window
    ``success`` / ``pber_estimate`` matrices as extras that concatenate
    across batches into the full trajectory matrices.
    """
    params = batch.point.params
    link = ClosedLoopLink(
        snr_db=float(params["snr_db"]),
        doppler_hz=float(params["doppler_hz"]),
        packet_bits=int(params.get("packet_bits", 1704)),
        packet_interval_s=float(params.get("packet_interval_s", 2e-3)),
        seed=batch.point.seed,
        decoder=params.get("decoder", "bcjr"),
    )
    first_index = batch.first_packet_index
    outcomes = link.decode_window(
        first_index, batch.num_packets,
        batch_size=int(params.get("batch_size", 16)),
    )
    outage = int((~outcomes.success.any(axis=1)).sum())
    return {
        "errors": outage,
        "trials": batch.num_packets,
        "success": outcomes.success,
        "pber_estimate": outcomes.pber_estimate,
    }


__all__ = [
    "ClosedLoopLink",
    "LinkTrajectory",
    "PrecomputedOutcomes",
    "oracle_trajectory",
    "replay_trajectory",
    "run_rate_adapt_batch",
]
