"""Closed-loop rate adaptation as a first-class scenario family.

The paper's Figure 7 scores SoftRate against a per-packet oracle as a
one-off evaluation; this package generalises the machinery so *any* rate
controller can be driven packet-by-packet over a time-varying channel,
priced in airtime, and characterised through the declarative
``Experiment`` / ``ResultStore`` / service stack like any BER curve.

* :mod:`~repro.mac.rateadapt.controllers` — the ``RateController``
  protocol (pure ``choose()``, state-mutating ``observe()``, plain-data
  ``to_dict``/``from_dict`` identity) plus the two classic frame-level
  samplers: :class:`~repro.mac.rateadapt.controllers.SampleRateController`
  (per-rate EWMA transmission-time accounting with periodic probing) and
  :class:`~repro.mac.rateadapt.controllers.MinstrelController` (EWMA
  success probability with max-throughput/second-best/probe rate chains).
  The paper's :class:`~repro.mac.softrate.SoftRateController` implements
  the same protocol in place, bit-for-bit compatible with its Figure 7
  behaviour.
* :mod:`~repro.mac.rateadapt.airtime` — the 802.11a/g frame-duration
  model (preamble/PLCP, DIFS/SIFS, ACK at the mandatory control rates,
  expected contention backoff) that turns "packets delivered" into
  achieved Mb/s.
* :mod:`~repro.mac.rateadapt.closedloop` — the chunk-invariant decode of
  the packet stream at every rate
  (:meth:`~repro.mac.rateadapt.closedloop.ClosedLoopLink.decode_window`,
  every per-packet quantity a pure function of the absolute packet
  index), controller replay over the decoded matrices, and the
  :func:`~repro.mac.rateadapt.closedloop.run_rate_adapt_batch`
  chunk-runner the store content-addresses.
* :mod:`~repro.mac.rateadapt.scenario` — the declarative
  :class:`~repro.mac.rateadapt.scenario.RateAdaptScenario` and the
  :class:`~repro.mac.rateadapt.scenario.RateAdaptExperiment` front door:
  swept, sharded, resumable, servable.
"""

from repro.mac.rateadapt.airtime import AirtimeModel, default_airtime_model
from repro.mac.rateadapt.closedloop import (ClosedLoopLink, LinkTrajectory,
                                            PrecomputedOutcomes,
                                            oracle_trajectory,
                                            replay_trajectory,
                                            run_rate_adapt_batch)
from repro.mac.rateadapt.controllers import (MinstrelController,
                                             RateController, RateFeedback,
                                             SampleRateController,
                                             classify_selection,
                                             controller_from_dict,
                                             optimal_rate_index)
from repro.mac.rateadapt.scenario import (DEFAULT_CONTROLLERS,
                                          RateAdaptExperiment,
                                          RateAdaptScenario)

__all__ = [
    "AirtimeModel",
    "ClosedLoopLink",
    "DEFAULT_CONTROLLERS",
    "LinkTrajectory",
    "MinstrelController",
    "PrecomputedOutcomes",
    "RateAdaptExperiment",
    "RateAdaptScenario",
    "RateController",
    "RateFeedback",
    "SampleRateController",
    "classify_selection",
    "controller_from_dict",
    "default_airtime_model",
    "optimal_rate_index",
    "oracle_trajectory",
    "replay_trajectory",
    "run_rate_adapt_batch",
]
