"""Batched end-to-end link simulation.

A :class:`LinkSimulator` owns a transmitter, a channel and a receiver for
one operating point (PHY rate, SNR, decoder) and pushes packets through the
whole chain.  The entire chain is batch-vectorised: a batch of packets
flows through transmit, channel and receive as 2-D arrays with no
per-packet Python iteration, which is what makes the paper's
BER-characterisation experiments feasible in pure Python.

Batching design
---------------
``_run_batch`` moves ``(packets, ...)`` tensors through the batch-native
APIs of the PHY layer::

    payload bits   (packets, packet_bits)   one chunk-invariant RNG draw
    tx samples     (packets, num_samples)   Transmitter.transmit_batch
    channel        (packets, num_samples)   per-packet fading gain applied
                                            as one broadcast multiply, one
                                            batched AWGN draw with
                                            per-packet noise scale
    soft values    (packets, 2*(bits+6))    Receiver.front_end_batch
    decoded        (packets, packet_bits)   Receiver.decode_batch

Per-packet SNRs and fading gains come from evaluating the user-supplied
callables once per packet index (the only per-packet Python left -- the
values are *applied* vectorised).  Payload bits and channel noise are drawn
from two independent generators spawned from the master seed; both draws
are chunk-invariant along the packet axis, so results are identical for
any ``batch_size`` split of the same run.

The simulator is deliberately independent of the latency-insensitive
framework: the LI pipelines in :mod:`repro.system.pipelines` reuse the same
block functions, so results agree, but the direct path avoids the
per-token scheduling overhead when only aggregate statistics are needed.

Layers above
------------
Most callers should not construct a :class:`LinkSimulator` directly: the
declarative front door (:class:`repro.analysis.scenario.Scenario` +
:class:`repro.analysis.scenario.Experiment`) builds one per operating
point/batch — via
:func:`repro.analysis.sweep.link_simulator_for_params` — and layers
sweeping, adaptive stopping, process sharding and store-backed resume on
top without changing a simulated bit.
"""

import numpy as np

from repro.channel.awgn import awgn_batch
from repro.phy.dtype import dtype_policy
from repro.phy.receiver import Receiver
from repro.phy.transmitter import Transmitter

#: Packets per fused kernel pass.  The BCJR recursions dominate the
#: chain's runtime and their per-packet cost falls with batch width until
#: the backward sweep's working set outgrows the cache: measured on the
#: Figure-6 workload the sweet spot is ~32 packets per decode, with cost
#: rising again past ~48.  ``run`` therefore *fuses* consecutive batches
#: into kernel passes of up to this many packets; thanks to
#: chunk-invariant RNG draws the results are bit-for-bit independent of
#: the fusion width.
FUSED_PACKET_TARGET = 32


class LinkRunResult:
    """Everything measured from one batch of simulated packets.

    Attributes
    ----------
    tx_bits:
        ``(packets, bits)`` transmitted payload bits.
    rx_bits:
        ``(packets, bits)`` decoded payload bits.
    llr:
        ``(packets, bits)`` signed decoder LLRs (``None`` for hard Viterbi).
    snr_db:
        Per-packet SNR actually applied (useful when the channel varies).
    """

    def __init__(self, tx_bits, rx_bits, llr, snr_db):
        self.tx_bits = tx_bits
        self.rx_bits = rx_bits
        self.llr = llr
        self.snr_db = snr_db

    @classmethod
    def from_runs(cls, runs):
        """Merge a sequence of runs (same geometry) into one result.

        Unlike chaining :meth:`concatenate`, this copies each array exactly
        once no matter how many runs are merged, so accumulating ``B``
        batches costs O(B) instead of O(B**2).
        """
        runs = list(runs)
        if not runs:
            raise ValueError("at least one run is required")
        if len(runs) == 1:
            return runs[0]
        llr = None
        if all(run.llr is not None for run in runs):
            llr = np.vstack([run.llr for run in runs])
        return cls(
            np.vstack([run.tx_bits for run in runs]),
            np.vstack([run.rx_bits for run in runs]),
            llr,
            np.concatenate([run.snr_db for run in runs]),
        )

    @property
    def hints(self):
        """Unsigned SoftPHY hints, or ``None`` for hard-output decoding."""
        return None if self.llr is None else np.abs(self.llr)

    @property
    def bit_errors(self):
        """Boolean array marking each decoded bit that differs from the transmitted bit."""
        return self.tx_bits != self.rx_bits

    @property
    def num_bits(self):
        return self.tx_bits.size

    @property
    def bit_error_rate(self):
        """Aggregate BER over every packet in the run."""
        return float(np.mean(self.bit_errors))

    @property
    def packet_ber(self):
        """Ground-truth per-packet BER."""
        return np.mean(self.bit_errors, axis=1)

    @property
    def packet_errors(self):
        """Boolean array: ``True`` for packets containing at least one bit error."""
        return self.bit_errors.any(axis=1)

    @property
    def packet_error_rate(self):
        """Fraction of packets with at least one bit error."""
        return float(np.mean(self.packet_errors))

    def concatenate(self, other):
        """Merge two runs (same geometry) into one result."""
        return LinkRunResult.from_runs([self, other])

    def __repr__(self):
        return "LinkRunResult(packets=%d, bits=%d, ber=%.3g)" % (
            self.tx_bits.shape[0],
            self.num_bits,
            self.bit_error_rate,
        )


class LinkSimulator:
    """Transmit/receive many packets through an AWGN (or faded) link.

    Parameters
    ----------
    phy_rate:
        The :class:`~repro.phy.params.PhyRate` to run at.
    snr_db:
        Es/N0 of the AWGN component, in dB.  May be a scalar or a callable
        ``packet_index -> snr_db`` for swept-SNR experiments.
    decoder:
        Decoder name, class or instance (see :func:`repro.phy.receiver.make_decoder`).
    packet_bits:
        Payload bits per packet (the paper's Figure 6 uses 1704).
    seed:
        Master seed for payload and noise generation.
    llr_format:
        Optional fixed-point format for the demapper output (hardware
        bit-width studies).
    demapper_scaled:
        ``True`` to use the ideal (SNR-scaled) demapper instead of the
        hardware one.
    fading_gain:
        Optional callable ``packet_index -> complex gain`` applying flat
        fading per packet; the receiver equalises with the same gain and
        weights its soft values by ``|gain|**2``.
    dtype:
        Working-precision policy (see :mod:`repro.phy.dtype`) threaded
        through the transmitter, channel and receiver.  The float64
        default is the exact reference chain; float32 is an opt-in
        approximate fast path (payload bits and noise are still drawn in
        the precision-invariant streams, so only kernel arithmetic
        changes).
    """

    def __init__(
        self,
        phy_rate,
        snr_db,
        decoder="bcjr",
        packet_bits=1704,
        seed=0,
        llr_format=None,
        demapper_scaled=False,
        fading_gain=None,
        dtype=None,
    ):
        self.phy_rate = phy_rate
        self.snr_db = snr_db
        self.packet_bits = int(packet_bits)
        self.seed = seed
        self.fading_gain = fading_gain
        self.dtype_policy = dtype_policy(dtype)
        self.transmitter = Transmitter(phy_rate, dtype=self.dtype_policy)
        self.receiver = Receiver(
            phy_rate,
            decoder=decoder,
            llr_format=llr_format,
            demapper_scaled=demapper_scaled,
            snr_db=snr_db if demapper_scaled and np.isscalar(snr_db) else None,
            dtype=self.dtype_policy,
        )
        # Independent payload and noise streams: each batch draws both as
        # one (packets, ...) tensor, and numpy's chunk-invariant fills make
        # the streams -- and therefore the results -- independent of how a
        # run is split into batches.
        bits_seq, noise_seq = np.random.SeedSequence(seed).spawn(2)
        self._bits_rng = np.random.default_rng(bits_seq)
        self._noise_rng = np.random.default_rng(noise_seq)

    def _snrs_for(self, indices):
        if callable(self.snr_db):
            return np.array([float(self.snr_db(int(i))) for i in indices])
        return np.full(len(indices), float(self.snr_db))

    def _gains_for(self, indices):
        if self.fading_gain is None:
            return None
        return np.array([complex(self.fading_gain(int(i))) for i in indices])

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(self, num_packets, batch_size=32, start_index=0, fused=True):
        """Simulate ``num_packets`` packets and return a :class:`LinkRunResult`.

        Packets are processed in batches so the batched kernels stay busy
        without exhausting memory; the per-batch results are collected and
        merged once at the end.

        With ``fused=True`` (the default) consecutive batches are fused
        into kernel passes of up to :data:`FUSED_PACKET_TARGET` packets,
        which keeps the decoder in its measured per-packet sweet spot.
        Because both RNG streams draw chunk-invariantly along the packet
        axis, the results are bit-for-bit identical for *any* batch split
        of the same run -- ``fused`` is purely a throughput knob.  Pass
        ``fused=False`` to iterate at exactly ``batch_size`` (e.g. to
        bound peak memory).
        """
        if num_packets < 1:
            raise ValueError("at least one packet is required")
        kernel_batch = batch_size
        if fused:
            kernel_batch = max(batch_size, min(num_packets, FUSED_PACKET_TARGET))
        batches = []
        for first in range(0, num_packets, kernel_batch):
            count = min(kernel_batch, num_packets - first)
            batches.append(self._run_batch(count, start_index + first))
        return LinkRunResult.from_runs(batches)

    def _run_batch(self, count, first_index):
        indices = first_index + np.arange(count)
        # int64 draws consume one raw word per bit, which keeps the stream
        # chunk-invariant for any packet size (narrow dtypes buffer several
        # values per word, so their streams depend on the batch split).
        tx_bits = self._bits_rng.integers(
            0, 2, size=(count, self.packet_bits), dtype=np.int64
        ).astype(np.uint8)
        samples = self.transmitter.transmit_batch(tx_bits)
        snrs = self._snrs_for(indices)
        gains = self._gains_for(indices)
        csi = None
        if gains is not None:
            samples = samples * gains[:, np.newaxis]
            num_symbols = self.receiver.geometry(self.packet_bits).num_symbols
            csi = np.broadcast_to(
                (np.abs(gains) ** 2)[:, np.newaxis], (count, num_symbols)
            )
        received = awgn_batch(samples, snrs, rng=self._noise_rng,
                              dtype=self.dtype_policy)
        soft = self.receiver.front_end_batch(
            received, self.packet_bits, channel_gains=gains, csi_weights=csi
        )
        decoded = self.receiver.decode_batch(soft, self.packet_bits)
        return LinkRunResult(tx_bits, decoded.bits, decoded.llr, snrs)

    def __repr__(self):
        return "LinkSimulator(rate=%s, decoder=%s)" % (
            self.phy_rate.name,
            self.receiver.decoder.name,
        )
