"""Batched end-to-end link simulation.

A :class:`LinkSimulator` owns a transmitter, a channel and a receiver for
one operating point (PHY rate, SNR, decoder) and pushes packets through the
whole chain.  The per-packet front end (scrambling through depuncturing) is
cheap vectorised numpy; the expensive trellis decode runs over a *batch* of
packets at once, which is what makes the paper's BER-characterisation
experiments feasible in pure Python.

The simulator is deliberately independent of the latency-insensitive
framework: the LI pipelines in :mod:`repro.phy.pipelines` reuse the same
block functions, so results agree, but the direct path avoids the
per-token scheduling overhead when only aggregate statistics are needed.
"""

import numpy as np

from repro.channel.awgn import awgn
from repro.phy.receiver import Receiver
from repro.phy.transmitter import Transmitter


class LinkRunResult:
    """Everything measured from one batch of simulated packets.

    Attributes
    ----------
    tx_bits:
        ``(packets, bits)`` transmitted payload bits.
    rx_bits:
        ``(packets, bits)`` decoded payload bits.
    llr:
        ``(packets, bits)`` signed decoder LLRs (``None`` for hard Viterbi).
    snr_db:
        Per-packet SNR actually applied (useful when the channel varies).
    """

    def __init__(self, tx_bits, rx_bits, llr, snr_db):
        self.tx_bits = tx_bits
        self.rx_bits = rx_bits
        self.llr = llr
        self.snr_db = snr_db

    @property
    def hints(self):
        """Unsigned SoftPHY hints, or ``None`` for hard-output decoding."""
        return None if self.llr is None else np.abs(self.llr)

    @property
    def bit_errors(self):
        """Boolean array marking each decoded bit that differs from the transmitted bit."""
        return self.tx_bits != self.rx_bits

    @property
    def num_bits(self):
        return self.tx_bits.size

    @property
    def bit_error_rate(self):
        """Aggregate BER over every packet in the run."""
        return float(np.mean(self.bit_errors))

    @property
    def packet_ber(self):
        """Ground-truth per-packet BER."""
        return np.mean(self.bit_errors, axis=1)

    @property
    def packet_errors(self):
        """Boolean array: ``True`` for packets containing at least one bit error."""
        return self.bit_errors.any(axis=1)

    @property
    def packet_error_rate(self):
        """Fraction of packets with at least one bit error."""
        return float(np.mean(self.packet_errors))

    def concatenate(self, other):
        """Merge two runs (same geometry) into one result."""
        llr = None
        if self.llr is not None and other.llr is not None:
            llr = np.vstack([self.llr, other.llr])
        return LinkRunResult(
            np.vstack([self.tx_bits, other.tx_bits]),
            np.vstack([self.rx_bits, other.rx_bits]),
            llr,
            np.concatenate([self.snr_db, other.snr_db]),
        )

    def __repr__(self):
        return "LinkRunResult(packets=%d, bits=%d, ber=%.3g)" % (
            self.tx_bits.shape[0],
            self.num_bits,
            self.bit_error_rate,
        )


class LinkSimulator:
    """Transmit/receive many packets through an AWGN (or faded) link.

    Parameters
    ----------
    phy_rate:
        The :class:`~repro.phy.params.PhyRate` to run at.
    snr_db:
        Es/N0 of the AWGN component, in dB.  May be a scalar or a callable
        ``packet_index -> snr_db`` for swept-SNR experiments.
    decoder:
        Decoder name, class or instance (see :func:`repro.phy.receiver.make_decoder`).
    packet_bits:
        Payload bits per packet (the paper's Figure 6 uses 1704).
    seed:
        Master seed for payload and noise generation.
    llr_format:
        Optional fixed-point format for the demapper output (hardware
        bit-width studies).
    demapper_scaled:
        ``True`` to use the ideal (SNR-scaled) demapper instead of the
        hardware one.
    fading_gain:
        Optional callable ``packet_index -> complex gain`` applying flat
        fading per packet; the receiver equalises with the same gain and
        weights its soft values by ``|gain|**2``.
    """

    def __init__(
        self,
        phy_rate,
        snr_db,
        decoder="bcjr",
        packet_bits=1704,
        seed=0,
        llr_format=None,
        demapper_scaled=False,
        fading_gain=None,
    ):
        self.phy_rate = phy_rate
        self.snr_db = snr_db
        self.packet_bits = int(packet_bits)
        self.seed = seed
        self.fading_gain = fading_gain
        self.transmitter = Transmitter(phy_rate)
        self.receiver = Receiver(
            phy_rate,
            decoder=decoder,
            llr_format=llr_format,
            demapper_scaled=demapper_scaled,
            snr_db=snr_db if demapper_scaled and np.isscalar(snr_db) else None,
        )
        self._rng = np.random.default_rng(seed)

    def _snr_for(self, packet_index):
        if callable(self.snr_db):
            return float(self.snr_db(packet_index))
        return float(self.snr_db)

    def _gain_for(self, packet_index):
        if self.fading_gain is None:
            return None
        return complex(self.fading_gain(packet_index))

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(self, num_packets, batch_size=32, start_index=0):
        """Simulate ``num_packets`` packets and return a :class:`LinkRunResult`.

        Packets are processed in batches of ``batch_size`` so the decoder's
        batched kernels stay busy without exhausting memory.
        """
        if num_packets < 1:
            raise ValueError("at least one packet is required")
        results = None
        for first in range(0, num_packets, batch_size):
            count = min(batch_size, num_packets - first)
            batch = self._run_batch(count, start_index + first)
            results = batch if results is None else results.concatenate(batch)
        return results

    def _run_batch(self, count, first_index):
        tx_bits = np.empty((count, self.packet_bits), dtype=np.uint8)
        softs = []
        snrs = np.empty(count)
        for i in range(count):
            index = first_index + i
            bits = self._rng.integers(0, 2, size=self.packet_bits, dtype=np.uint8)
            tx_bits[i] = bits
            samples = self.transmitter.transmit(bits)
            snr_db = self._snr_for(index)
            snrs[i] = snr_db
            gain = self._gain_for(index)
            if gain is not None:
                samples = samples * gain
            received = awgn(samples, snr_db, rng=self._rng)
            csi = None
            if gain is not None:
                csi = np.full(
                    self.receiver.geometry(self.packet_bits).num_symbols,
                    np.abs(gain) ** 2,
                )
            softs.append(
                self.receiver.front_end(
                    received, self.packet_bits, channel_gain=gain, csi_weights=csi
                )
            )
        soft = np.vstack(softs)
        decoded = self.receiver.decode_batch(soft, self.packet_bits)
        return LinkRunResult(tx_bits, decoded.bits, decoded.llr, snrs)

    def __repr__(self):
        return "LinkSimulator(rate=%s, decoder=%s)" % (
            self.phy_rate.name,
            self.receiver.decoder.name,
        )
