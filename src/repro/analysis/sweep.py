"""Small helpers for parameter sweeps.

The benchmark harness repeats the same experiment across a list of operating
points (the eight PHY rates, a range of SNRs, a set of block lengths).
:func:`sweep` keeps that loop in one place and returns rows that the
reporting module can turn straight into a table.
"""


def sweep(values, experiment, label="value"):
    """Run ``experiment(value)`` for every value and collect labelled rows.

    Parameters
    ----------
    values:
        Iterable of parameter values.
    experiment:
        Callable invoked once per value; it should return a mapping of
        column name to result.
    label:
        Column name used for the swept parameter itself.

    Returns
    -------
    list of dict
        One dictionary per value, containing the parameter and the
        experiment's results.
    """
    rows = []
    for value in values:
        result = experiment(value)
        if not isinstance(result, dict):
            result = {"result": result}
        row = {label: value}
        row.update(result)
        rows.append(row)
    return rows


def cross_sweep(first_values, second_values, experiment, labels=("first", "second")):
    """Two-dimensional sweep: run ``experiment(a, b)`` for every pair."""
    rows = []
    for a in first_values:
        for b in second_values:
            result = experiment(a, b)
            if not isinstance(result, dict):
                result = {"result": result}
            row = {labels[0]: a, labels[1]: b}
            row.update(result)
            rows.append(row)
    return rows
