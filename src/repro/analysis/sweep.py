"""Parameter sweeps: declarative grids, serial/process executors, legacy helpers.

The benchmark harness repeats the same experiment across a grid of operating
points (the eight PHY rates, a range of SNRs, a set of block lengths).  This
module turns that pattern into a small subsystem:

* :class:`SweepSpec` declares the grid (named axes, shared constants, a
  master seed) and derives one independent random seed per point.
* :class:`SweepExecutor` runs a picklable point-runner over the grid with a
  ``serial`` or ``process`` backend and aggregates rows in grid order.
* :func:`sweep` / :func:`cross_sweep` are the legacy one-liners, kept as
  deprecated shims over the :class:`~repro.analysis.scenario.Experiment`
  front door.

The preferred top-level entry point is one layer up: describe the link as
a :class:`~repro.analysis.scenario.Scenario`, the grid as a
:class:`SweepSpec`, and run both through an
:class:`~repro.analysis.scenario.Experiment` — which also unlocks the
content-addressed result store (:mod:`repro.analysis.store`).

Parallel sweeps
---------------
One :class:`~repro.analysis.link.LinkSimulator` per (rate, SNR) point is
embarrassingly parallel and already deterministic per seed, so a sweep can
be sharded across worker processes without changing a single result bit.
The design mirrors the batching contract in :mod:`repro.analysis.link`
(results independent of the ``batch_size`` split): here, results are
independent of the *executor* — backend, worker count, chunk size and
dispatch order never change a row.

Three mechanisms make that hold:

``seed derivation``
    Each point's :class:`numpy.random.SeedSequence` is derived from the
    spec's master seed with a ``spawn_key`` computed from the point's axis
    coordinates — the same parent/child derivation ``SeedSequence.spawn``
    performs, but keyed by *what the point is* instead of a sequential
    counter.  Reordering axis values, chunking the grid differently or
    adding workers therefore cannot move a point onto a different stream,
    and two distinct points never share one.  (For run-to-run stable seeds,
    axis values should be primitives — numbers, strings, bools, tuples —
    whose ``repr`` does not change between processes.)

``chunked dispatch, ordered aggregation``
    The process backend ships chunks of points to a
    :class:`concurrent.futures.ProcessPoolExecutor` (the point-runner must
    be picklable, i.e. a module-level callable) and reassembles rows by
    point index, so the output order is the grid order no matter which
    worker finished first.

``per-point error capture``
    A runner exception is caught *in the worker* and reported with the
    failing operating point attached (:class:`SweepError`, or an ``error``
    row when ``on_error="capture"``) instead of aborting the whole sweep
    with a bare pickled traceback.

Rows are plain dicts (point parameters + runner results), and
:func:`rows_to_json` renders them as JSON lines that
``benchmarks/_bench_utils.emit`` can persist for trajectory tracking.

Adaptive measurement depth lives one layer up, in
:mod:`repro.analysis.adaptive`: it extends the per-point seed derivation
one level down (per fixed-size batch) and drives this executor round by
round under a global traffic budget.
"""

import contextlib
import hashlib
import itertools
import json
import math
import os
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np

#: Environment variable read by :func:`executor_from_env`.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


# ---------------------------------------------------------------------- #
# Seed derivation
# ---------------------------------------------------------------------- #
def _stable_token(value):
    """A deterministic byte token for one axis value.

    Primitives and containers of primitives encode via ``repr`` (stable
    across processes and runs for numbers, strings, bools and ``None``);
    the type name is included so ``1``, ``1.0`` and ``"1"`` stay distinct.
    Mappings encode by sorted key, so two dicts with different insertion
    orders produce the same token.
    """
    if isinstance(value, (tuple, list)):
        inner = b",".join(_stable_token(item) for item in value)
        return b"%s(%s)" % (type(value).__name__.encode(), inner)
    if isinstance(value, dict):
        inner = b",".join(
            b"%s=%s" % (_stable_token(key), _stable_token(item))
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
        return b"dict(%s)" % inner
    return b"%s:%s" % (type(value).__name__.encode(), repr(value).encode())


def point_spawn_key(coordinates):
    """The ``SeedSequence`` spawn key for one point's axis coordinates.

    A 128-bit digest of the sorted ``(axis name, value)`` pairs, returned
    as four ``uint32`` words.  Depends only on the coordinates themselves:
    grid position, chunking and worker count cannot change it.
    """
    blob = b";".join(
        b"%s=%s" % (str(name).encode(), _stable_token(value))
        for name, value in sorted((str(k), v) for k, v in coordinates.items())
    )
    digest = hashlib.sha256(blob).digest()
    return tuple(
        int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4)
    )


# ---------------------------------------------------------------------- #
# Specs and points
# ---------------------------------------------------------------------- #
class SweepPoint:
    """One operating point of a sweep.

    Attributes
    ----------
    index:
        Position in the grid (row-major over the spec's axes).
    params:
        Mapping of parameter name to value — the spec's constants plus this
        point's axis coordinates.
    seed_sequence:
        Independent :class:`numpy.random.SeedSequence` for this point.
    """

    __slots__ = ("index", "params", "coordinates", "seed_sequence")

    def __init__(self, index, params, coordinates, seed_sequence):
        self.index = int(index)
        self.params = dict(params)
        self.coordinates = dict(coordinates)
        self.seed_sequence = seed_sequence

    @property
    def seed(self):
        """A 64-bit integer seed drawn from :attr:`seed_sequence`.

        Convenient for APIs that take an integer master seed (e.g.
        :class:`~repro.analysis.link.LinkSimulator`).
        """
        return int(self.seed_sequence.generate_state(1, np.uint64)[0])

    def __getitem__(self, name):
        return self.params[name]

    def label(self):
        """Human-readable ``name=value`` description of the coordinates."""
        return ", ".join(
            "%s=%r" % (name, value) for name, value in self.coordinates.items()
        )

    def __eq__(self, other):
        return (
            isinstance(other, SweepPoint)
            and self.index == other.index
            and self.params == other.params
        )

    def __repr__(self):
        return "SweepPoint(%d: %s)" % (self.index, self.label())


class SweepSpec:
    """A declarative sweep grid.

    Parameters
    ----------
    axes:
        Mapping of axis name to iterable of values.  The grid is the
        row-major cross product (first axis outermost), matching the
        nesting order of the legacy loop helpers.
    constants:
        Optional parameters shared by every point (workload knobs like
        ``packet_bits``).  They appear in every point's ``params`` but do
        not enter the seed derivation, so scaling a workload up keeps each
        point on the same random stream.
    seed:
        Master seed; per-point seeds are derived from it via
        :func:`point_spawn_key` (see the module docstring).
    """

    def __init__(self, axes, constants=None, seed=0):
        self.axes = {str(name): list(values) for name, values in dict(axes).items()}
        if not self.axes:
            raise ValueError("at least one axis is required")
        self.constants = dict(constants or {})
        overlap = set(self.axes) & set(self.constants)
        if overlap:
            raise ValueError(
                "parameters cannot be both axis and constant: %s"
                % ", ".join(sorted(overlap))
            )
        self.seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def axis_names(self):
        return tuple(self.axes)

    @property
    def seed_entropy(self):
        """The root ``SeedSequence`` entropy every point seed derives from."""
        return self._root.entropy

    @property
    def num_points(self):
        return math.prod(len(values) for values in self.axes.values())

    def __len__(self):
        return self.num_points

    def seed_sequence_for(self, coordinates):
        """The :class:`~numpy.random.SeedSequence` of the point at ``coordinates``."""
        return np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=point_spawn_key(coordinates)
        )

    def points(self):
        """All grid points, in row-major order."""
        names = self.axis_names
        points = []
        for index, combo in enumerate(itertools.product(*self.axes.values())):
            coordinates = dict(zip(names, combo))
            params = dict(self.constants)
            params.update(coordinates)
            points.append(
                SweepPoint(index, params, coordinates,
                           self.seed_sequence_for(coordinates))
            )
        return points

    def __iter__(self):
        return iter(self.points())

    def __repr__(self):
        shape = "x".join(str(len(values)) for values in self.axes.values())
        return "SweepSpec(%s [%s], seed=%r)" % (
            ", ".join(self.axis_names), shape, self.seed,
        )


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #
class SweepError(RuntimeError):
    """A point-runner raised; the failing operating point is attached.

    The message names the point (index and coordinates) and carries the
    worker-formatted traceback, so a failure inside a process pool is as
    diagnosable as one in a plain loop.
    """

    def __init__(self, point, detail):
        self.point = point
        self.detail = detail
        super().__init__(
            "sweep point %d (%s) failed: %s" % (point.index, point.label(), detail)
        )


def _normalise_result(result):
    if not isinstance(result, dict):
        return {"result": result}
    return dict(result)


def _run_points(runner, points):
    """Run ``runner`` over points, capturing per-point failures.

    Returns ``(index, error, result)`` triples.  This is the single code
    path shared by the serial backend and every pool worker, which is what
    makes backend equivalence exact rather than merely likely.
    """
    outcomes = []
    for point in points:
        try:
            outcomes.append((point.index, None, _normalise_result(runner(point))))
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            detail = "%s: %s\n%s" % (
                type(exc).__name__, exc, traceback.format_exc(),
            )
            outcomes.append((point.index, detail, None))
    return outcomes


class SweepExecutor:
    """Run a point-runner over a :class:`SweepSpec`.

    Parameters
    ----------
    backend:
        ``"serial"`` (in-process loop) or ``"process"``
        (:class:`concurrent.futures.ProcessPoolExecutor`; the runner and
        every axis value must be picklable).
    max_workers:
        Process count for the ``process`` backend (default
        ``os.cpu_count()``).
    chunk_size:
        Points per dispatched task (default: grid split into about four
        chunks per worker).  Affects scheduling granularity only — never
        results.
    mp_context:
        Optional :mod:`multiprocessing` context or start-method name
        (``"fork"``, ``"spawn"``, ``"forkserver"``).
    """

    def __init__(self, backend="serial", max_workers=None, chunk_size=None,
                 mp_context=None):
        if backend not in ("serial", "process"):
            raise ValueError("unknown backend %r (use 'serial' or 'process')"
                             % (backend,))
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self._pool = None

    def _resolved_workers(self):
        return self.max_workers or os.cpu_count() or 1

    def _make_pool(self, max_workers):
        import multiprocessing

        context = self.mp_context
        if isinstance(context, str):
            context = multiprocessing.get_context(context)
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    @contextlib.contextmanager
    def session(self):
        """Keep one worker pool alive across several :meth:`run` calls.

        By default the process backend builds (and tears down) its pool
        inside every :meth:`run`, which is the right lifetime for a
        one-shot sweep but wasteful for callers that dispatch many small
        rounds — the adaptive scheduler pays pool startup per *round*
        otherwise.  Inside a ``session()`` the pool is created once and
        reused; results are unaffected (the pool is pure transport).
        No-op for the serial backend, and re-entrant (a nested session
        reuses the outer pool).
        """
        if self.backend != "process" or self._pool is not None:
            yield self
            return
        pool = self._make_pool(self._resolved_workers())
        self._pool = pool
        try:
            yield self
        finally:
            self._pool = None
            pool.shutdown()

    def _chunks(self, points):
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(points) / (4 * self._resolved_workers())))
        return [points[first:first + size]
                for first in range(0, len(points), size)]

    def run(self, spec, runner, on_error="raise"):
        """Run ``runner`` on every point and return rows in grid order.

        Each row is the point's ``params`` merged with the runner's result
        mapping (non-dict results are wrapped as ``{"result": value}``).
        ``on_error`` is ``"raise"`` (raise :class:`SweepError` for the
        first failing point, in grid order) or ``"capture"`` (emit an
        ``error`` row for failed points and keep going).
        """
        if on_error not in ("raise", "capture"):
            raise ValueError("on_error must be 'raise' or 'capture'")
        points = list(spec)
        if not points:
            return []

        if self.backend == "serial":
            outcomes = _run_points(runner, points)
        else:
            outcomes = self._run_process(runner, points)

        outcomes.sort(key=lambda outcome: outcome[0])
        by_index = {point.index: point for point in points}
        rows = []
        for index, error, result in outcomes:
            point = by_index[index]
            if error is not None:
                if on_error == "raise":
                    raise SweepError(point, error)
                row = dict(point.params)
                row["error"] = error.splitlines()[0]
                rows.append(row)
            else:
                row = dict(point.params)
                row.update(result)
                rows.append(row)
        return rows

    def _run_process(self, runner, points):
        if self._pool is not None:
            return self._collect(self._pool, runner, points)
        workers = min(self._resolved_workers(), len(points))
        with self._make_pool(workers) as pool:
            return self._collect(pool, runner, points)

    def _collect(self, pool, runner, points):
        outcomes = []
        futures = [pool.submit(_run_points, runner, chunk)
                   for chunk in self._chunks(points)]
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    def __repr__(self):
        return "SweepExecutor(backend=%r, max_workers=%r, chunk_size=%r)" % (
            self.backend, self.max_workers, self.chunk_size,
        )


def executor_from_env(default_backend="serial"):
    """Build an executor from the ``REPRO_SWEEP_WORKERS`` environment knob.

    ``REPRO_SWEEP_WORKERS`` unset, empty or ``1`` selects the
    ``default_backend`` (serial unless overridden); any larger integer
    selects the process backend with that many workers.  Benchmarks use
    this so the harness can shard sweeps without code changes.

    Anything else — non-integers, zero, negatives — raises a
    :class:`ValueError` naming the variable immediately, instead of
    silently falling back to serial or crashing deep inside the worker
    pool with an unrelated traceback.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return SweepExecutor(default_backend)
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            "%s must be a positive integer worker count; got %r"
            % (WORKERS_ENV, raw)) from None
    if workers <= 0:
        raise ValueError(
            "%s must be a positive integer worker count; got %r"
            % (WORKERS_ENV, raw))
    if workers > 1:
        return SweepExecutor("process", max_workers=workers)
    return SweepExecutor(default_backend)


# ---------------------------------------------------------------------- #
# Built-in point runners and row emission
# ---------------------------------------------------------------------- #
class _PointFading:
    """Picklable per-packet flat-fading gain for one operating point.

    Samples one :class:`~repro.channel.fading.JakesFadingProcess` at
    ``packet_index * packet_interval_s``: the gain is a pure function of
    the absolute packet index, so a point's fading trace is one continuous
    process no matter how the run is split into batches.
    """

    def __init__(self, process, packet_interval_s):
        self.process = process
        self.packet_interval_s = float(packet_interval_s)

    def __call__(self, packet_index):
        return complex(self.process.gain(packet_index * self.packet_interval_s))


def _resolve_fading(fading, point_seed):
    """Turn the declarative ``fading`` parameter into a gain callable.

    ``fading`` may be ``None`` (AWGN only), a number (Doppler frequency in
    Hz) or a mapping with any of ``doppler_hz``, ``packet_interval_s``,
    ``num_oscillators``, ``mean_power`` and ``seed``.  The fading process
    seed defaults to the *point* seed (not a batch seed), keeping the trace
    identical across every batch of an adaptive run.
    """
    if fading is None:
        return None
    if callable(fading):
        return fading
    from repro.channel.fading import JakesFadingProcess

    spec = {"doppler_hz": float(fading)} if np.isscalar(fading) else dict(fading)
    interval_s = spec.pop("packet_interval_s", 1e-3)
    spec.setdefault("seed", point_seed)
    return _PointFading(JakesFadingProcess(**spec), interval_s)


def _resolve_llr_format(llr_format):
    """Turn the declarative ``llr_format`` parameter into a fixed-point format.

    ``None`` keeps the float demapper output; an integer asks for that many
    total soft bits (via :func:`repro.fixedpoint.fixed.llr_quantizer`); a
    mapping passes keyword arguments to the quantizer; a format object
    passes through untouched.  Floats and bools are rejected here rather
    than crashing obscurely deep in the demapper.
    """
    if llr_format is None:
        return None
    if isinstance(llr_format, bool) or isinstance(llr_format, (float, np.floating)):
        raise ValueError(
            "llr_format must be None, an integer soft bit-width, a mapping "
            "of llr_quantizer arguments or a fixed-point format object; "
            "got %r" % (llr_format,)
        )
    from repro.fixedpoint.fixed import llr_quantizer

    if isinstance(llr_format, dict):
        return llr_quantizer(**llr_format)
    if isinstance(llr_format, (int, np.integer)):
        return llr_quantizer(int(llr_format))
    return llr_format


def _deprecated(name, replacement, stacklevel=2):
    """Emit a shim's DeprecationWarning, attributed to the shim's caller.

    ``replacement`` must name the supported entry point (the
    :class:`repro.analysis.scenario.Experiment` front door) so the
    warning is actionable on its own.  ``stacklevel`` counts frames from
    the *shim*: the default ``2`` points the warning at the code that
    called the deprecated entry point — the line the user must edit —
    rather than at this module; one extra frame is added for this helper
    itself.
    """
    warnings.warn(
        "%s is deprecated; %s" % (name, replacement),
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )


def link_simulator_for_params(params, seed, point_seed=None):
    """Build the :class:`~repro.analysis.link.LinkSimulator` a point describes.

    Shared by the fixed-depth point-runner below and the adaptive
    chunk-runner (:func:`repro.analysis.adaptive.run_link_ber_batch`):
    ``seed`` seeds the simulator's payload/noise streams (the point seed
    for a fixed run, the batch seed for an adaptive one), while
    ``point_seed`` anchors per-point processes such as fading that must
    stay identical across batches.
    """
    from repro.analysis.link import LinkSimulator
    from repro.phy.params import rate_by_mbps

    return LinkSimulator(
        rate_by_mbps(params["rate_mbps"]),
        snr_db=params["snr_db"],
        decoder=params.get("decoder", "bcjr"),
        packet_bits=int(params.get("packet_bits", 1704)),
        seed=seed,
        llr_format=_resolve_llr_format(params.get("llr_format")),
        demapper_scaled=bool(params.get("demapper_scaled", False)),
        fading_gain=_resolve_fading(
            params.get("fading"), seed if point_seed is None else point_seed
        ),
        dtype=params.get("dtype"),
    )


def run_link_ber_point(point):
    """Deprecated params-dict point-runner; use the Experiment front door.

    A thin shim over :func:`repro.analysis.scenario.run_scenario_point`,
    which validates the link description as a
    :class:`~repro.analysis.scenario.Scenario` built from the point's
    params and produces bit-for-bit the rows this function always did
    (fixed depth with ``stop=None``, adaptive with ``stop=StopRule(...)``
    in the constants).  New code should describe the link as a
    ``Scenario`` and run it through an
    :class:`~repro.analysis.scenario.Experiment`.
    """
    _deprecated(
        "run_link_ber_point",
        "describe the link as a repro.analysis.scenario.Scenario and run "
        "it through Experiment (run_scenario_point is the picklable "
        "point-runner behind it)",
    )
    from repro.analysis.scenario import run_scenario_point

    return run_scenario_point(point)


def _json_default(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError("%r (type %s) is not JSON-serialisable"
                    % (value, type(value).__name__))


def rows_to_json(rows):
    """Render sweep rows as JSON lines for ``benchmarks/_bench_utils.emit``.

    numpy scalars and arrays are converted to plain Python values (arrays
    to nested lists).  Anything else non-serialisable raises a
    :class:`TypeError` naming the offending row key, so a benchmark that
    leaks an object into its rows fails at emission with a usable message
    instead of silently recording a ``repr`` the trajectory tooling cannot
    parse.
    """
    lines = []
    for index, row in enumerate(rows):
        try:
            lines.append(json.dumps(row, default=_json_default))
        except TypeError:
            for key, value in row.items():
                try:
                    json.dumps({key: value}, default=_json_default)
                except TypeError:
                    raise TypeError(
                        "sweep row %d is not JSON-serialisable at key %r: "
                        "%r (type %s); convert it to JSON/numpy values or "
                        "drop the key before emitting"
                        % (index, key, value, type(value).__name__)
                    ) from None
            raise
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Legacy helpers
# ---------------------------------------------------------------------- #
class _ExperimentAdapter:
    """Adapt a legacy ``experiment(*values)`` callable to a point-runner."""

    def __init__(self, experiment, names):
        self.experiment = experiment
        self.names = tuple(names)

    def __call__(self, point):
        return self.experiment(*(point.params[name] for name in self.names))


def sweep(values, experiment, label="value"):
    """Deprecated: run ``experiment(value)`` for every value, serially.

    A shim over the :class:`~repro.analysis.scenario.Experiment` front
    door: ``sweep(values, fn, label)`` builds ``SweepSpec({label:
    values})`` and runs the adapted callable through an ``Experiment``
    pinned to the serial backend (legacy experiment callables are often
    closures, which a process pool could not pickle).  Rows are identical
    to what this helper always returned.
    """
    _deprecated(
        "sweep()",
        "build a SweepSpec and run it through "
        "repro.analysis.scenario.Experiment",
    )
    values = list(values)
    if not values:
        return []
    from repro.analysis.scenario import Experiment

    spec = SweepSpec({label: values})
    return Experiment(
        sweep=spec, runner=_ExperimentAdapter(experiment, (label,))
    ).run(SweepExecutor("serial"))


def cross_sweep(first_values, second_values, experiment, labels=("first", "second")):
    """Deprecated: run ``experiment(a, b)`` for every pair, serially.

    The two-axis analogue of :func:`sweep`, shimmed over the same
    :class:`~repro.analysis.scenario.Experiment` path.
    """
    _deprecated(
        "cross_sweep()",
        "build a two-axis SweepSpec and run it through "
        "repro.analysis.scenario.Experiment",
    )
    first_values = list(first_values)
    second_values = list(second_values)
    if not first_values or not second_values:
        return []
    from repro.analysis.scenario import Experiment

    spec = SweepSpec({labels[0]: first_values, labels[1]: second_values})
    return Experiment(
        sweep=spec, runner=_ExperimentAdapter(experiment, tuple(labels))
    ).run(SweepExecutor("serial"))
