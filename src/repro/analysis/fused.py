"""Fused multi-point simulation rounds.

An adaptive round (and a characterisation-service dispatch cycle) typically
carries one small :class:`~repro.analysis.adaptive.MeasurementBatch` per
operating point — at the default 8-32 packets each, far below the decoder's
measured per-packet sweet spot (see
:data:`repro.analysis.link.FUSED_PACKET_TARGET`).  This module groups the
batches of a round that share a *link configuration shape* (same rate,
decoder, packet size, LLR format, demapper scaling and precision policy —
differing only in SNR and fading) and pushes each group through the PHY
chain as one tensor pass:

* one payload-bit concatenation and one :meth:`Transmitter.transmit_batch`,
* per-batch channel application (each batch keeps its own noise generator
  and fading trace — the RNG streams are *never* fused),
* one :meth:`Receiver.front_end_batch` with a per-packet ``llr_scale``
  array standing in for the per-point scaled demappers,
* one chunked :meth:`Receiver.decode_batch` sized to the decoder's
  sweet spot.

Bit-exactness contract
----------------------
Under the exact float64 :class:`~repro.phy.dtype.DTypePolicy` a fused group
produces **bit-for-bit** the counts the per-batch path
(:func:`repro.analysis.adaptive.run_link_ber_batch`) produces, because

* every chain kernel is row-independent, so concatenating packets along the
  batch axis cannot change any row's value;
* payload bits and noise are still drawn per batch from the batch's own
  derived generators (the chunk-invariant streams the store keys encode);
* the scaled demapper's per-point ``Es/N0 * S_modulation`` factor is
  reproduced as the *identical* Python-float scalar per packet, applied in
  the same elementwise multiply.

Under float32 the fused and per-batch paths are both approximate and agree
to tolerance only (see :mod:`repro.phy.dtype`).
"""

import time

import numpy as np

from repro.analysis.sweep import _resolve_fading, _resolve_llr_format
from repro.obs.phases import get_phase_hook
from repro.channel.awgn import awgn_batch
from repro.phy.demapper import MODULATION_SCALE
from repro.phy.dtype import dtype_policy
from repro.phy.params import rate_by_mbps
from repro.phy.receiver import Receiver
from repro.phy.transmitter import Transmitter

#: Packets per fused decode call: the decoder's measured per-packet sweet
#: spot (cost rises again past ~48 as the backward sweep's working set
#: outgrows the cache), so a large group decodes in several warm passes.
DECODE_CHUNK_PACKETS = 32

#: Batches per fused group.  Bounds the peak sample-tensor footprint of a
#: group (the front end holds every member's received samples at once)
#: while keeping each group far above the fusion break-even point.
MAX_GROUP_BATCHES = 64


def fuse_key(params):
    """The fusion-compatibility key of one batch's parameters, or ``None``.

    Batches whose points share a key can be simulated as one fused group:
    the key pins everything that shapes the tensors and the receiver
    (rate, decoder, packet size, LLR format, demapper scaling, precision
    policy, whether fading is present), while SNR and the fading values —
    which fused rounds apply per packet — deliberately stay out.

    ``None`` marks an unfusable point: object-valued (non-declarative)
    parameters such as an SNR callable, a decoder instance, a gain
    callable or a fixed-point format object, whose behaviour the fused
    path cannot reproduce from the declarative spelling.
    """
    snr = params.get("snr_db")
    rate = params.get("rate_mbps")
    decoder = params.get("decoder", "bcjr")
    llr_format = params.get("llr_format")
    fading = params.get("fading")
    if rate is None or snr is None or callable(snr):
        return None
    if not isinstance(decoder, str):
        return None
    if callable(fading):
        return None
    if isinstance(llr_format, bool) or (
            llr_format is not None and not isinstance(llr_format, (int, dict))):
        return None
    fmt = llr_format
    if isinstance(fmt, dict):
        fmt = tuple(sorted(fmt.items()))
    try:
        policy_name = dtype_policy(params.get("dtype")).name
    except (ValueError, TypeError):
        return None
    return (
        float(rate),
        decoder,
        int(params.get("packet_bits", 1704)),
        fmt,
        bool(params.get("demapper_scaled", False)),
        policy_name,
        fading is not None,
    )


class FusedBatchGroup:
    """A picklable bundle of same-shape measurement batches.

    Presents the minimal point-like surface the dispatch layers need
    (``point``, ``label``), so a group can travel through the same
    executor/fleet plumbing as a single batch.
    """

    __slots__ = ("batches",)

    def __init__(self, batches):
        self.batches = list(batches)
        if not self.batches:
            raise ValueError("a fused group needs at least one batch")

    @property
    def point(self):
        """The first member's point (labels, coordinates for reporting)."""
        return self.batches[0].point

    @property
    def num_packets(self):
        return sum(batch.num_packets for batch in self.batches)

    def __len__(self):
        return len(self.batches)

    def label(self):
        return "fused x%d [%s; ...]" % (len(self.batches),
                                        self.batches[0].label())

    def __repr__(self):
        return "FusedBatchGroup(batches=%d, packets=%d)" % (
            len(self.batches), self.num_packets)


def run_fused_group(batches, decode_chunk=DECODE_CHUNK_PACKETS):
    """Simulate a list of same-``fuse_key`` batches in one tensor pass.

    Returns one ``{"errors", "trials", "packet_errors"}`` mapping per
    batch, aligned with the input — exactly what
    :func:`repro.analysis.adaptive.run_link_ber_batch` returns for each,
    and (under float64) bit-for-bit equal to it; see the module docstring
    for the contract and its mechanism.
    """
    batches = list(batches)
    if not batches:
        return []
    params = batches[0].point.params
    rate = rate_by_mbps(params["rate_mbps"])
    packet_bits = int(params.get("packet_bits", 1704))
    policy = dtype_policy(params.get("dtype"))
    scaled = bool(params.get("demapper_scaled", False))
    transmitter = Transmitter(rate, dtype=policy)
    # The fused receiver is always built in hardware-demapper mode: a
    # scaled group reproduces each point's Es/N0 scaling through the
    # per-packet llr_scale array instead of a per-point demapper.
    receiver = Receiver(
        rate,
        decoder=params.get("decoder", "bcjr"),
        llr_format=_resolve_llr_format(params.get("llr_format")),
        demapper_scaled=False,
        dtype=policy,
    )

    # Per-batch draws and channel parameters.  The generators replicate
    # LinkSimulator's derivation exactly: two streams spawned from the
    # batch seed, payload bits as one chunk-invariant int64 draw.
    tx_rows, noise_rngs, snr_rows, gain_rows, scale_rows = [], [], [], [], []
    for batch in batches:
        bparams = batch.point.params
        bits_seq, noise_seq = np.random.SeedSequence(batch.seed).spawn(2)
        bits_rng = np.random.default_rng(bits_seq)
        noise_rngs.append(np.random.default_rng(noise_seq))
        tx_rows.append(
            bits_rng.integers(
                0, 2, size=(batch.num_packets, packet_bits), dtype=np.int64
            ).astype(np.uint8)
        )
        snr = bparams["snr_db"]
        snr_rows.append(np.full(batch.num_packets, float(snr)))
        fading = _resolve_fading(bparams.get("fading"), batch.point.seed)
        if fading is None:
            gain_rows.append(None)
        else:
            indices = batch.first_packet_index + np.arange(batch.num_packets)
            gain_rows.append(
                np.array([complex(fading(int(i))) for i in indices])
            )
        if scaled:
            # The same Python-float scalar the point's own scaled demapper
            # would have computed, replicated across the batch's packets.
            scale_rows.append(np.full(
                batch.num_packets,
                10.0 ** (snr / 10.0) * MODULATION_SCALE[rate.modulation.name],
            ))

    total = sum(batch.num_packets for batch in batches)
    # Phase hooks observe stage wall-clock only — never values — so the
    # traced and untraced passes produce identical tensors.
    hook = get_phase_hook()
    if hook is not None:
        phase_ts = time.time()
        phase_t0 = time.perf_counter()
    samples = transmitter.transmit_batch(np.concatenate(tx_rows, axis=0))
    if hook is not None:
        hook("transmit", phase_ts, time.perf_counter() - phase_t0,
             {"packets": total})

    # Channel, per batch: fading gains, then AWGN from the batch's own
    # noise generator (the one stage that must not fuse across batches).
    gains_all = None
    csi_all = None
    if any(g is not None for g in gain_rows):
        gains_all = np.concatenate(gain_rows)
        num_symbols = receiver.geometry(packet_bits).num_symbols
        csi_all = np.broadcast_to(
            (np.abs(gains_all) ** 2)[:, np.newaxis], (total, num_symbols)
        )
    if hook is not None:
        phase_ts = time.time()
        phase_t0 = time.perf_counter()
    received_rows = []
    offset = 0
    for batch, noise_rng, snrs, gains in zip(batches, noise_rngs, snr_rows,
                                             gain_rows):
        segment = samples[offset:offset + batch.num_packets]
        if gains is not None:
            segment = segment * gains[:, np.newaxis]
        received_rows.append(
            awgn_batch(segment, snrs, rng=noise_rng, dtype=policy)
        )
        offset += batch.num_packets
    received = np.concatenate(received_rows, axis=0)
    llr_scales = np.concatenate(scale_rows) if scaled else None
    if hook is not None:
        hook("channel", phase_ts, time.perf_counter() - phase_t0,
             {"packets": total})

    # Fused receive: front end and decode over every member at once,
    # chunked to the decoder's sweet spot (row-independent, so chunk
    # boundaries may fall anywhere).  The two stages interleave across
    # chunks, so their hook durations accumulate over the loop and each
    # reports once, anchored at its first chunk's start.
    rx_rows = []
    fe_dur = dec_dur = 0.0
    fe_ts = dec_ts = 0.0
    for start in range(0, total, decode_chunk):
        stop = min(start + decode_chunk, total)
        if hook is not None:
            if start == 0:
                fe_ts = time.time()
            t0 = time.perf_counter()
        soft = receiver.front_end_batch(
            received[start:stop], packet_bits,
            channel_gains=None if gains_all is None else gains_all[start:stop],
            csi_weights=None if csi_all is None else csi_all[start:stop],
            llr_scale=None if llr_scales is None else llr_scales[start:stop],
        )
        if hook is not None:
            fe_dur += time.perf_counter() - t0
            if start == 0:
                dec_ts = time.time()
            t0 = time.perf_counter()
        rx_rows.append(receiver.decode_batch(soft, packet_bits).bits)
        if hook is not None:
            dec_dur += time.perf_counter() - t0
    if hook is not None:
        hook("front-end", fe_ts, fe_dur, {"packets": total})
        hook("decode", dec_ts, dec_dur, {"packets": total})
    rx_bits = np.vstack(rx_rows)

    results = []
    offset = 0
    for batch, tx_bits in zip(batches, tx_rows):
        bit_errors = tx_bits != rx_bits[offset:offset + batch.num_packets]
        results.append({
            "errors": int(bit_errors.sum()),
            "trials": int(bit_errors.size),
            "packet_errors": int(bit_errors.any(axis=1).sum()),
        })
        offset += batch.num_packets
    return results


class FusedBatchRunner:
    """Picklable runner executing a :class:`FusedBatchGroup` in one pass.

    Returns ``{"results": [...]}`` with one chunk-runner mapping per
    member batch, aligned with ``group.batches``.  If the fused pass
    itself fails, every member is retried individually through the
    wrapped per-batch ``chunk_runner`` so one poisoned configuration
    cannot take down its round-mates; a member that still fails yields a
    captured ``{"error": ...}`` mapping in its slot.
    """

    def __init__(self, chunk_runner):
        self.chunk_runner = chunk_runner

    def __call__(self, group):
        try:
            return {"results": run_fused_group(group.batches)}
        except Exception:  # noqa: BLE001 - fall back to the per-batch path
            import traceback

            results = []
            for batch in group.batches:
                try:
                    results.append(dict(self.chunk_runner(batch)))
                except Exception as exc:  # noqa: BLE001 - captured per slot
                    results.append({
                        "error": "%s: %s\n%s" % (
                            type(exc).__name__, exc, traceback.format_exc()),
                    })
            return {"results": results}

    def __eq__(self, other):
        return (isinstance(other, FusedBatchRunner)
                and self.chunk_runner == other.chunk_runner)

    def __repr__(self):
        return "FusedBatchRunner(%r)" % (self.chunk_runner,)


def plan_fused_round(batches, max_group=MAX_GROUP_BATCHES):
    """Partition a round's batches into fused groups and leftovers.

    Returns ``(groups, singles)``: every :class:`FusedBatchGroup` bundles
    at least two batches sharing a :func:`fuse_key` (split at
    ``max_group`` members to bound peak memory); ``singles`` keeps the
    unfusable points and the lone members of their key in dispatch order.
    """
    by_key = {}
    singles = []
    for batch in batches:
        key = fuse_key(batch.point.params)
        if key is None:
            singles.append(batch)
        else:
            by_key.setdefault(key, []).append(batch)
    groups = []
    for members in by_key.values():
        if len(members) < 2:
            singles.extend(members)
            continue
        for start in range(0, len(members), max_group):
            chunk = members[start:start + max_group]
            if len(chunk) < 2:
                singles.extend(chunk)
            else:
                groups.append(FusedBatchGroup(chunk))
    return groups, singles
