"""Content-addressed persistence for characterisation batches.

The adaptive subsystem's central invariant — batch ``k`` of a point is a
pure function of ``(spec, point, batch index)`` — makes per-batch results
cacheable on disk: once simulated, a batch's result never changes, so a
re-run can serve it from the store and simulate only the batch indices it
has never seen.  This module is that cache:

* :class:`ResultStore` is a directory of JSON-lines files, one per
  *experiment namespace* (see
  :meth:`repro.analysis.scenario.Experiment.store_digest`: the scenario
  content hash extended with constants, master seed entropy, batch
  quantum and runner identity).
* :class:`StoreView` is one namespace's read/append handle, keyed by
  ``(point spawn_key, batch index)`` — the same coordinates the seed
  derivation uses, so the key IS the random stream's identity.

Resume semantics
----------------
The store holds *batch* results, never rows: stopping decisions are
replayed by the scheduler from the (cached or fresh) batch counts, which
is what makes a warm run bit-for-bit identical to a cold one — packets
spent and stop reasons included — while a tighter
:class:`~repro.analysis.adaptive.StopRule` re-run simulates only the
missing batch indices.  Nothing about the stop rule, budget or executor
enters the namespace digest.

Durability model: records are appended as one JSON line per batch,
written by the scheduling (parent) process only — worker processes never
touch the store, so there is no cross-process file locking to get wrong.
A truncated final line (e.g. a killed run) is ignored on load and
rewritten on the next run.

Values must be JSON-representable or numpy: arrays round-trip through a
tagged encoding that preserves dtype and shape bit for bit (floats
survive exactly — JSON rendering uses ``repr``-faithful shortest floats).
Tuples and arbitrary objects are rejected with an error naming the key:
silently coercing them would break the warm-equals-cold guarantee.
"""

import json
import os

import numpy as np

#: On-disk format version, written to each file's header line.
FORMAT_VERSION = 1

_SCALARS = (str, int, float)


class StoreError(RuntimeError):
    """A result store file or record is unusable as asked."""


def _encode_value(value, key):
    """JSON-able encoding of one result value, ndarrays tagged."""
    if isinstance(value, np.ndarray):
        if value.dtype.kind not in "biuf":
            raise StoreError(
                "result value for key %r is a %s array; only bool/int/float "
                "arrays have an exact JSON round-trip" % (key, value.dtype))
        return {"__ndarray__": value.tolist(),
                "dtype": str(value.dtype),
                "shape": list(value.shape)}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, bool) or isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return [_encode_value(item, key) for item in value]
    if isinstance(value, dict):
        return {str(name): _encode_value(item, key)
                for name, item in value.items()}
    raise StoreError(
        "result value for key %r is not storable: %r (type %s); the store "
        "accepts JSON scalars, lists, dicts and numpy values — tuples and "
        "objects would not survive the round-trip bit for bit"
        % (key, value, type(value).__name__))


def _decode_value(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"],
                            dtype=value["dtype"]).reshape(value["shape"])
        return {name: _decode_value(item) for name, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def _normalise_point_key(point_key):
    try:
        return tuple(int(word) for word in point_key)
    except (TypeError, ValueError):
        raise StoreError("point_key must be a sequence of integers; got %r"
                         % (point_key,)) from None


class StoreView:
    """One experiment namespace of a :class:`ResultStore`.

    Records are keyed by ``(point spawn_key, batch index)``;
    :meth:`get` / :meth:`put` maintain an in-memory index over the
    append-only JSON-lines file.  ``hits`` and ``misses`` count this
    view's lookups — ``misses`` is exactly the number of batches a
    store-backed run had to simulate.
    """

    def __init__(self, path, metadata=None):
        self.path = str(path)
        self.metadata = metadata
        self.hits = 0
        self.misses = 0
        self._index = None

    # ------------------------------------------------------------------ #
    def _load(self):
        if self._index is not None:
            return self._index
        index = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        # A truncated trailing line (killed run) is the only
                        # way a record goes bad; drop it and resimulate.
                        continue
                    if "format" in record:  # header line
                        if record["format"] != FORMAT_VERSION:
                            raise StoreError(
                                "store file %s has format %r; this reader "
                                "understands %r"
                                % (self.path, record["format"], FORMAT_VERSION))
                        continue
                    key = (tuple(record["point"]), int(record["batch"]))
                    index[key] = record
        self._index = index
        return index

    def _append(self, record):
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            if fresh:
                header = {"format": FORMAT_VERSION}
                if self.metadata:
                    header["metadata"] = self.metadata
                handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps(record) + "\n")

    # ------------------------------------------------------------------ #
    def __len__(self):
        return len(self._load())

    def known_batches(self, point_key):
        """Sorted batch indices stored for one point."""
        point_key = _normalise_point_key(point_key)
        return sorted(batch for point, batch in self._load()
                      if point == point_key)

    def get(self, point_key, batch_index, num_packets):
        """The stored result for one batch, or ``None`` (counted a miss).

        ``num_packets`` is verified against the stored record — a mismatch
        means the caller's namespace digest is wrong (or the file was
        tampered with), and serving the record anyway would silently break
        the chunk-invariance contract, so it raises instead.
        """
        key = (_normalise_point_key(point_key), int(batch_index))
        record = self._load().get(key)
        if record is None:
            self.misses += 1
            return None
        if int(record["num_packets"]) != int(num_packets):
            raise StoreError(
                "store %s holds batch %d of point %r at %d packets, but %d "
                "were requested; the experiment namespace digest should have "
                "separated these" % (self.path, key[1], key[0],
                                     record["num_packets"], num_packets))
        self.hits += 1
        return {name: _decode_value(value)
                for name, value in record["result"].items()}

    def put(self, point_key, batch_index, num_packets, result):
        """Append one batch result (idempotent for an existing key)."""
        key = (_normalise_point_key(point_key), int(batch_index))
        index = self._load()
        if key in index:
            return
        record = {
            "point": list(key[0]),
            "batch": key[1],
            "num_packets": int(num_packets),
            "result": {str(name): _encode_value(value, name)
                       for name, value in dict(result).items()},
        }
        self._append(record)
        index[key] = record

    def __repr__(self):
        return "StoreView(%r, records=%d, hits=%d, misses=%d)" % (
            self.path, len(self._load()), self.hits, self.misses)


class ResultStore:
    """A directory of per-experiment-namespace JSON-lines batch caches.

    Parameters
    ----------
    root:
        Directory path; created on first write.  One
        ``<namespace digest>.jsonl`` file per experiment namespace.
    """

    def __init__(self, root):
        self.root = str(root)

    def view(self, digest, metadata=None):
        """The :class:`StoreView` for one namespace digest."""
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise StoreError(
                "namespace digest must be a hex string (from "
                "Experiment.store_digest()); got %r" % (digest,))
        return StoreView(os.path.join(self.root, digest + ".jsonl"),
                         metadata=metadata)

    def digests(self):
        """Sorted namespace digests already present under ``root``."""
        if not os.path.isdir(self.root):
            return []
        return sorted(name[:-len(".jsonl")] for name in os.listdir(self.root)
                      if name.endswith(".jsonl"))

    def __repr__(self):
        return "ResultStore(%r, namespaces=%d)" % (self.root, len(self.digests()))
