"""Bit-error-rate statistics: confidence intervals and hint-binned BER.

The paper measures BER down to 1e-9 by simulating trillions of bits on the
FPGA.  A Python reproduction cannot reach that floor directly, so every BER
reported by this repository carries a confidence interval, and the Figure 5
reproduction bins errors by hint value and fits the log-linear relationship
rather than reading single points.
"""

import math

import numpy as np


def wilson_interval(errors, trials, confidence=0.95):
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``.  The edges are handled explicitly, because the
    adaptive stopper (:mod:`repro.analysis.adaptive`) leans on them:

    * ``trials == 0`` returns the vacuous interval ``(0.0, 1.0)`` — no data
      constrains nothing (a sequential loop asks before its first batch);
    * ``errors == 0`` pins the lower bound to exactly ``0.0`` while the
      upper bound stays finite and shrinks roughly as ``z**2 / trials`` —
      the zero-error bound that lets a high-SNR point prove its BER is
      below a measurement floor;
    * ``errors == trials`` symmetrically pins the upper bound to ``1.0``.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0 <= errors <= trials:
        raise ValueError("errors must lie in [0, trials]")
    if trials == 0:
        return 0.0, 1.0
    # Two-sided normal quantile for the requested confidence.
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = errors / trials
    denominator = 1.0 + z * z / trials
    centre = (p + z * z / (2.0 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denominator
    )
    # Pin the one-sided edges exactly: with p == 0 (or 1) centre and margin
    # are equal in exact arithmetic, but floating point can leave a stray
    # 1e-19 that would break "the lower bound is zero" reasoning.
    low = 0.0 if errors == 0 else max(0.0, centre - margin)
    high = 1.0 if errors == trials else min(1.0, centre + margin)
    return low, high


def _erfinv(x):
    """Inverse error function (scipy-backed with a rational fallback)."""
    try:
        from scipy.special import erfinv

        return float(erfinv(x))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        # Winitzki's approximation, good to ~2e-3.
        a = 0.147
        ln_term = math.log(1.0 - x * x)
        first = 2.0 / (math.pi * a) + ln_term / 2.0
        return math.copysign(
            math.sqrt(math.sqrt(first * first - ln_term / a) - first), x
        )


class BerMeasurement:
    """An error count with its derived rate and confidence interval."""

    def __init__(self, errors, bits, confidence=0.95):
        if bits <= 0:
            raise ValueError("a BER measurement needs at least one bit")
        self.errors = int(errors)
        self.bits = int(bits)
        self.confidence = confidence

    @property
    def ber(self):
        """Point estimate of the bit error rate."""
        return self.errors / self.bits

    @property
    def interval(self):
        """Wilson confidence interval for the BER."""
        return wilson_interval(self.errors, self.bits, self.confidence)

    def merge(self, other):
        """Combine two measurements of the same quantity."""
        return BerMeasurement(
            self.errors + other.errors, self.bits + other.bits, self.confidence
        )

    def __repr__(self):
        low, high = self.interval
        return "BerMeasurement(ber=%.3g, n=%d, ci=[%.3g, %.3g])" % (
            self.ber,
            self.bits,
            low,
            high,
        )


def bin_errors_by_hint(hints, errors, bin_edges=None, bin_width=1.0, max_hint=None):
    """Group decoded bits by their hint value and count errors per group.

    This is the measurement behind Figure 5: for every hint bin it returns
    how many bits carried a hint in that bin and how many of them were
    decoded incorrectly.

    Parameters
    ----------
    hints:
        Array of unsigned SoftPHY hints, one per decoded bit.
    errors:
        Boolean array of the same shape marking erroneous bits.
    bin_edges:
        Explicit bin edges; when omitted, uniform bins of ``bin_width`` from
        0 to ``max_hint`` (or the observed maximum) are used.
    bin_width, max_hint:
        Used only when ``bin_edges`` is omitted.

    Returns
    -------
    tuple of numpy.ndarray
        ``(bin_centres, bit_counts, error_counts)``.
    """
    hints = np.asarray(hints, dtype=np.float64).reshape(-1)
    errors = np.asarray(errors, dtype=bool).reshape(-1)
    if hints.shape != errors.shape:
        raise ValueError("hints and errors must have the same length")
    if bin_edges is None:
        top = float(max_hint) if max_hint is not None else float(hints.max(initial=0.0))
        top = max(top, bin_width)
        bin_edges = np.arange(0.0, top + bin_width, bin_width)
    bin_edges = np.asarray(bin_edges, dtype=np.float64)
    indices = np.clip(np.digitize(hints, bin_edges) - 1, 0, bin_edges.size - 2)
    bit_counts = np.bincount(indices, minlength=bin_edges.size - 1)
    error_counts = np.bincount(
        indices, weights=errors.astype(np.float64), minlength=bin_edges.size - 1
    ).astype(np.int64)
    centres = 0.5 * (bin_edges[:-1] + bin_edges[1:])
    return centres, bit_counts, error_counts
