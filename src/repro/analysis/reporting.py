"""Plain-text tables for the benchmark harness.

Every benchmark prints the rows of the paper table or figure it reproduces;
:class:`Table` keeps those printouts aligned and consistent so the
EXPERIMENTS.md comparisons can be pasted from the benchmark output.
"""


def format_ratio(value, digits=2):
    """Format a ratio such as ``2.18x``."""
    return "%.*fx" % (digits, value)


def format_percentage(value, digits=1):
    """Format a fraction as a percentage string."""
    return "%.*f%%" % (digits, 100.0 * value)


def format_scientific(value, digits=2):
    """Format a small probability in scientific notation."""
    return "%.*e" % (digits, value)


class Table:
    """A simple fixed-width text table.

    Parameters
    ----------
    columns:
        Column headings, in order.
    title:
        Optional title printed above the table.
    """

    def __init__(self, columns, title=None):
        self.columns = list(columns)
        self.title = title
        self.rows = []

    def add_row(self, *values, **named):
        """Append a row given positionally or by column name."""
        if values and named:
            raise ValueError("pass either positional values or named values, not both")
        if named:
            values = [named.get(column, "") for column in self.columns]
        if len(values) != len(self.columns):
            raise ValueError(
                "expected %d values, got %d" % (len(self.columns), len(values))
            )
        self.rows.append([self._stringify(value) for value in values])

    @staticmethod
    def _stringify(value):
        if isinstance(value, float):
            return "%.4g" % value
        return str(value)

    def render(self):
        """Return the formatted table as a string."""
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            column.ljust(widths[i]) for i, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * widths[i] for i in range(len(self.columns))))
        for row in self.rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def __str__(self):
        return self.render()
