"""Declarative link scenarios and the unified experiment front door.

Every figure and ablation in this repository describes the same thing: a
*link configuration* (code rate/decoder, channel and fading, LLR format
and demapper scaling, packet shape) swept over a grid of operating points
to some target measurement depth.  Historically that description lived in
a stringly-typed ``point.params`` dict that
:func:`~repro.analysis.sweep.run_link_ber_point` interpreted by
convention; this module makes it first class:

* :class:`Scenario` is a validated, frozen dataclass naming the link
  configuration.  It round-trips through :meth:`Scenario.to_dict` /
  :meth:`Scenario.from_dict` and has a canonical
  :meth:`Scenario.content_hash` — the identity the result store
  (:mod:`repro.analysis.store`) files curves under.
* :class:`Experiment` is the one front door for running a scenario over a
  :class:`~repro.analysis.sweep.SweepSpec`: fixed depth (``stop=None``),
  adaptive depth (``stop=StopRule(...)``), serial or process execution
  (the ``executor`` argument of :meth:`Experiment.run`), and optional
  persistence/resume through a :class:`~repro.analysis.store.ResultStore`.
* :func:`run_scenario_point` is the canonical picklable link point-runner
  behind the fixed-depth default; the legacy params-dict entry points
  (``run_link_ber_point``, ``sweep``, ``cross_sweep``) are deprecated
  shims over this layer.

Scenario versus workload knobs
------------------------------
A :class:`Scenario` holds only what changes *the physics* of a measured
bit: rate, SNR, decoder, packet shape, fading, LLR quantisation, demapper
scaling.  Knobs that change how the measurement is *executed* — packet
counts, simulation ``batch_size``, stopping rules, budgets, executors —
deliberately stay outside, so the scenario hash is stable across
re-characterisations at different depths.  That split is exactly what
makes batch-level resume correct: a re-run with a tighter
:class:`~repro.analysis.adaptive.StopRule` maps onto the same store
namespace and only simulates the batch indices the looser run never
reached.

A scenario field left ``None`` means "supplied per operating point":
``Scenario(snr_db=None)`` with an ``snr_db`` sweep axis is the usual BER
curve, while ``Scenario(snr_db=6.0)`` pins the channel and sweeps
something else (bit-widths, window lengths, ...).

Declarative versus object-valued fields
---------------------------------------
``fading``, ``llr_format``, ``snr_db`` and ``decoder`` also accept the
callables/objects the simulator layer understands (a gain callable, a
fixed-point format instance, a decoder instance).  Such a scenario still
runs, but it has no canonical serialised form, so :meth:`to_dict` and
:meth:`content_hash` refuse it with an error naming the field — use the
declarative spelling (numbers and mappings) when you want persistence.
"""

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields

import numpy as np

from repro.analysis.sweep import SweepSpec, _stable_token

#: Keyword arguments a declarative ``fading`` mapping may carry (the
#: signature of :class:`repro.channel.fading.JakesFadingProcess` plus the
#: per-packet sampling interval).
FADING_KEYS = ("doppler_hz", "packet_interval_s", "num_oscillators",
               "mean_power", "seed")

_NUMBER_TYPES = (int, float, np.integer, np.floating)


def _is_number(value):
    return isinstance(value, _NUMBER_TYPES) and not isinstance(value, bool)


@dataclass(frozen=True)
class Scenario:
    """A validated, frozen description of one link configuration.

    Parameters
    ----------
    rate_mbps:
        802.11a/g data rate in Mb/s (the code rate/modulation pair), or
        ``None`` when the rate is a sweep axis.
    snr_db:
        Es/N0 of the AWGN component in dB, or ``None`` when the SNR is a
        sweep axis.  (A callable ``packet_index -> snr_db`` is accepted
        for swept-SNR experiments but is not declarative.)
    decoder:
        Decoder name (``"bcjr"``, ``"sova"``, ``"viterbi"``), or ``None``
        when the decoder is a sweep axis.  Decoder classes/instances are
        accepted but not declarative.
    packet_bits:
        Payload bits per packet (the paper's Figure 6 uses 1704), or
        ``None`` when swept.
    fading:
        ``None`` for AWGN only, a Doppler frequency in Hz, or a mapping
        with keys from :data:`FADING_KEYS`.  A gain callable is accepted
        but not declarative.
    llr_format:
        ``None`` for float demapper output, an integer total soft
        bit-width, or a mapping of
        :func:`repro.fixedpoint.fixed.llr_quantizer` arguments.  A format
        object is accepted but not declarative.  Floats and bools are
        rejected outright (a fractional bit-width is always a bug).
    demapper_scaled:
        ``True`` for the ideal (SNR-scaled) demapper instead of the
        hardware one.  Normalised to a plain bool.
    dtype:
        Working-precision policy name: ``"float64"`` (default — the exact
        reference chain) or ``"float32"`` (the opt-in approximate fast
        path; see :mod:`repro.phy.dtype`).  ``None`` normalises to
        ``"float64"``.  The default is *omitted* from :meth:`to_dict` and
        therefore from :meth:`content_hash`, so every pre-existing
        scenario hash — and every result-store namespace filed under it —
        is unchanged; a float32 scenario hashes (and is stored)
        differently, because its measured bits genuinely differ.
    """

    rate_mbps: object = None
    snr_db: object = None
    decoder: object = "bcjr"
    packet_bits: object = 1704
    fading: object = None
    llr_format: object = None
    demapper_scaled: object = False
    dtype: object = "float64"

    def __post_init__(self):
        if self.rate_mbps is not None and not (
                _is_number(self.rate_mbps) and self.rate_mbps > 0):
            raise ValueError(
                "rate_mbps must be a positive number or None; got %r"
                % (self.rate_mbps,))
        if self.snr_db is not None and not _is_number(self.snr_db) \
                and not callable(self.snr_db):
            raise ValueError(
                "snr_db must be a number, a packet_index -> snr_db callable "
                "or None; got %r" % (self.snr_db,))
        if self.decoder is not None and isinstance(self.decoder, str) \
                and not self.decoder:
            raise ValueError("decoder name must be non-empty")
        if self.packet_bits is not None:
            if not _is_number(self.packet_bits) or int(self.packet_bits) < 1 \
                    or self.packet_bits != int(self.packet_bits):
                raise ValueError(
                    "packet_bits must be a positive integer or None; got %r"
                    % (self.packet_bits,))
            object.__setattr__(self, "packet_bits", int(self.packet_bits))
        if self.fading is not None and not callable(self.fading):
            if _is_number(self.fading):
                if self.fading <= 0:
                    raise ValueError(
                        "a numeric fading value is a Doppler frequency in Hz "
                        "and must be positive; got %r" % (self.fading,))
            else:
                try:
                    spec = dict(self.fading)
                except (TypeError, ValueError):
                    raise ValueError(
                        "fading must be None, a Doppler frequency in Hz, a "
                        "mapping with keys %s or a gain callable; got %r"
                        % (", ".join(FADING_KEYS), self.fading)) from None
                unknown = set(spec) - set(FADING_KEYS)
                if unknown:
                    raise ValueError(
                        "unknown fading key(s) %s; allowed keys are %s"
                        % (", ".join(sorted(map(str, unknown))),
                           ", ".join(FADING_KEYS)))
                object.__setattr__(self, "fading", spec)
        if self.llr_format is not None:
            if isinstance(self.llr_format, bool) \
                    or isinstance(self.llr_format, (float, np.floating)):
                raise ValueError(
                    "llr_format must be None, an integer soft bit-width, a "
                    "mapping of llr_quantizer arguments or a fixed-point "
                    "format object; got %r" % (self.llr_format,))
            if isinstance(self.llr_format, (int, np.integer)):
                if self.llr_format < 1:
                    raise ValueError(
                        "llr_format bit-width must be positive; got %r"
                        % (self.llr_format,))
                object.__setattr__(self, "llr_format", int(self.llr_format))
            elif isinstance(self.llr_format, dict):
                object.__setattr__(self, "llr_format", dict(self.llr_format))
        object.__setattr__(self, "demapper_scaled", bool(self.demapper_scaled))
        dtype = "float64" if self.dtype is None else self.dtype
        if dtype not in ("float64", "float32"):
            raise ValueError(
                "dtype must be 'float64', 'float32' or None; got %r"
                % (self.dtype,))
        object.__setattr__(self, "dtype", dtype)

    # ------------------------------------------------------------------ #
    # Declarative form
    # ------------------------------------------------------------------ #
    def _non_declarative_field(self):
        """The name of the first object-valued field, or ``None``."""
        if callable(self.snr_db):
            return "snr_db"
        if self.decoder is not None and not isinstance(self.decoder, str):
            return "decoder"
        if self.fading is not None and callable(self.fading):
            return "fading"
        if self.llr_format is not None \
                and not isinstance(self.llr_format, (int, dict)):
            return "llr_format"
        return None

    @property
    def is_declarative(self):
        """Whether every field has a canonical serialised form."""
        return self._non_declarative_field() is None

    def to_dict(self):
        """The canonical plain-data form, suitable for JSON round-trips.

        Raises :class:`ValueError` naming the offending field when the
        scenario carries an object-valued (non-declarative) value.
        """
        bad = self._non_declarative_field()
        if bad is not None:
            raise ValueError(
                "Scenario field %r holds an object value (%r) and has no "
                "canonical serialised form; use the declarative spelling "
                "(numbers/mappings) for to_dict()/content_hash()"
                % (bad, getattr(self, bad)))
        out = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "dtype" and value == "float64":
                # The default policy is omitted so pre-existing scenario
                # hashes (and their store namespaces) stay stable; float32
                # versions the hash because its results genuinely differ.
                continue
            if isinstance(value, np.integer):
                value = int(value)
            elif isinstance(value, np.floating):
                value = float(value)
            elif isinstance(value, dict):
                value = dict(value)
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a scenario from :meth:`to_dict` output."""
        data = dict(data)
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown Scenario field(s): %s (known fields: %s)"
                % (", ".join(sorted(unknown)), ", ".join(sorted(known))))
        return cls(**data)

    @classmethod
    def from_params(cls, params):
        """Build a scenario from a legacy sweep ``params`` dict.

        Picks out the link-configuration keys and ignores workload knobs
        (``num_packets``, ``batch_size``, ``stop``, ``batch_packets``,
        custom runner parameters).  This is what the deprecated
        params-dict entry points use internally, so their validation is
        the Scenario's, not an ad-hoc copy.
        """
        known = {field.name for field in fields(cls)}
        picked = {name: params[name] for name in known if name in params}
        return cls(**picked)

    def content_hash(self):
        """A canonical SHA-256 hex digest of the declarative form.

        Two scenarios hash equal iff their :meth:`to_dict` forms are
        equal; value *types* are part of the identity (``24`` and ``24.0``
        differ), matching the sweep layer's seed-derivation tokens.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def params(self):
        """The sweep-constants dict this scenario contributes.

        ``None`` fields are omitted (they arrive per point, from sweep
        axes); ``demapper_scaled`` is omitted when ``False`` so a default
        scenario adds nothing a legacy constants dict did not carry.
        """
        out = {}
        for name in ("rate_mbps", "snr_db", "decoder", "packet_bits",
                     "fading", "llr_format"):
            value = getattr(self, name)
            if value is not None:
                out[name] = dict(value) if isinstance(value, dict) else value
        if self.demapper_scaled:
            out["demapper_scaled"] = True
        if self.dtype != "float64":
            out["dtype"] = self.dtype
        return out

    def replace(self, **changes):
        """A copy of this scenario with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def __hash__(self):
        # The generated frozen-dataclass hash chokes on the documented
        # mapping spellings of fading/llr_format; hash those by sorted
        # items instead so equal scenarios hash equal.
        def canonical(value):
            if isinstance(value, dict):
                return tuple(sorted(value.items()))
            return value

        return hash(tuple(canonical(getattr(self, field.name))
                          for field in fields(self)))


def is_scenario_like(obj):
    """Whether ``obj`` implements the scenario protocol.

    The :class:`Experiment` front door (and the service request layer)
    accept any scenario class that provides the four members the
    declarative stack actually uses — ``to_dict()``, ``content_hash()``,
    ``params()`` and ``is_declarative`` — not just :class:`Scenario`
    itself.  :class:`repro.mac.rateadapt.scenario.RateAdaptScenario` is
    the first such sibling; new workload families add theirs the same
    way instead of widening this module.
    """
    return all(callable(getattr(obj, name, None))
               for name in ("to_dict", "content_hash", "params")) \
        and hasattr(obj, "is_declarative")


# ---------------------------------------------------------------------- #
# Canonical link point-runner
# ---------------------------------------------------------------------- #
def run_scenario_point(point):
    """Picklable point-runner: one link BER measurement per operating point.

    The canonical implementation behind fixed-depth link experiments (and
    the deprecated ``run_link_ber_point`` shim).  The link configuration
    is validated as a :class:`Scenario` built from the point's params
    (axes plus constants); measurement depth comes from the workload
    knobs:

    ``stop=None`` (default)
        Fixed depth — exactly ``num_packets`` packets, one seed stream per
        point (the wall-clock-pinned perf benchmarks rely on this mode
        costing the same everywhere).
    ``stop=StopRule(...)``
        Adaptive depth — the point runs in fixed-size batches of
        ``batch_packets`` packets (default ``batch_size``) through
        :func:`repro.analysis.adaptive.run_point_adaptive` until the rule
        fires; ``num_packets`` becomes the per-point traffic cap when the
        rule itself has no ``max_packets``.  The row gains ``packets``,
        ``batches``, ``stop_reason`` and Wilson interval bounds.
    """
    params = point.params
    Scenario.from_params(params)  # validate the link description early
    stop = params.get("stop")
    if stop is not None:
        from repro.analysis.adaptive import run_link_ber_batch, run_point_adaptive

        if stop.max_packets is None:
            stop = stop.replace(max_packets=int(params.get("num_packets", 32)))
        row = run_point_adaptive(
            point,
            run_link_ber_batch,
            stop,
            batch_packets=int(
                params.get("batch_packets", params.get("batch_size", 32))
            ),
        )
        # The spec's params are already in every sweep row; return only the
        # measured quantities, in the fixed-mode vocabulary plus the
        # adaptive extras.
        return {
            "seed": point.seed,
            "num_bits": row["trials"],
            "bit_errors": row["errors"],
            "ber": row["ber"],
            "ber_low": row["ber_low"],
            "ber_high": row["ber_high"],
            "packet_error_rate": (
                row["packet_errors"] / row["packets"] if row["packets"] else 0.0
            ),
            "packets": row["packets"],
            "batches": row["batches"],
            "stop_reason": row["stop_reason"],
        }

    from repro.analysis.sweep import link_simulator_for_params

    simulator = link_simulator_for_params(params, seed=point.seed)
    result = simulator.run(
        int(params.get("num_packets", 32)),
        batch_size=int(params.get("batch_size", 32)),
    )
    return {
        "seed": point.seed,
        "num_bits": int(result.num_bits),
        "bit_errors": int(result.bit_errors.sum()),
        "ber": result.bit_error_rate,
        "packet_error_rate": result.packet_error_rate,
    }


# ---------------------------------------------------------------------- #
# The front door
# ---------------------------------------------------------------------- #
class Experiment:
    """One link scenario, swept over a grid, to a chosen measurement depth.

    The unified front door over the sweep and adaptive subsystems:
    fixed-depth and adaptive measurement, serial and process execution,
    and store-backed resume are all selected by arguments rather than by
    choosing among ``SweepExecutor.run`` / ``run_point_adaptive`` /
    ``AdaptiveScheduler`` call styles.

    Parameters
    ----------
    scenario:
        The :class:`Scenario` under test.  Its non-``None`` fields become
        sweep constants; fields left ``None`` must arrive from the sweep
        axes.  May be ``None`` for experiments whose custom runner does
        not describe a link (a store then cannot be attached).
    sweep:
        The :class:`~repro.analysis.sweep.SweepSpec` naming the operating
        point axes, any extra workload constants (``num_packets``,
        ``batch_size``, runner-specific knobs) and the master seed.
        ``stop`` must *not* appear among the constants — it is an
        experiment-level argument here, which is what keeps the store
        namespace independent of the stopping rule.
    stop:
        ``None`` for fixed depth (every point runs ``num_packets``
        packets through the point-runner), or a
        :class:`~repro.analysis.adaptive.StopRule` for adaptive depth
        (fixed-size batches until the rule fires, scheduled by an
        :class:`~repro.analysis.adaptive.AdaptiveScheduler`).
    store:
        Optional :class:`~repro.analysis.store.ResultStore`.  Requires a
        declarative ``scenario`` and a ``stop`` rule (only the
        batch-invariant adaptive path has content-addressed units of
        work).  Batches already in the store are served without
        simulation; missing ones are simulated and appended.
    runner:
        Optional custom runner: a point-runner for fixed depth (default
        :func:`run_scenario_point`) or a chunk-runner for adaptive depth
        (default :func:`repro.analysis.adaptive.run_link_ber_batch`).
        Must be a picklable module-level callable for process executors —
        and for store use, where its qualified name is part of the store
        namespace.
    batch_packets:
        Adaptive batch quantum (the chunk-invariance unit).  Defaults to
        the sweep constants' ``batch_packets``, then ``batch_size``, then
        32 — mirroring the legacy params-dict behaviour.
    budget:
        Optional global packet budget for the adaptive scheduler.  Cache
        hits debit the budget exactly like simulated batches, so a warm
        run replays the cold run's trajectory bit for bit.
    """

    def __init__(self, scenario=None, sweep=None, stop=None, store=None,
                 runner=None, batch_packets=None, budget=None):
        if sweep is None:
            raise ValueError("an Experiment needs a SweepSpec (sweep=...)")
        if scenario is not None and not is_scenario_like(scenario):
            raise TypeError(
                "scenario must implement the Scenario protocol (to_dict, "
                "content_hash, params, is_declarative) or be None; got %r"
                % (scenario,))
        if "stop" in sweep.constants:
            raise ValueError(
                "'stop' found in the sweep constants; the stopping rule is "
                "an Experiment-level argument (stop=...) so that the result "
                "store namespace stays independent of it")
        if stop is None:
            if budget is not None:
                raise ValueError(
                    "budget is an adaptive knob; give the Experiment a "
                    "StopRule (stop=...) to run at adaptive depth")
            if batch_packets is not None:
                raise ValueError(
                    "batch_packets is an adaptive knob; give the Experiment "
                    "a StopRule (stop=...) to run at adaptive depth")
        if store is not None:
            if stop is None:
                raise ValueError(
                    "a ResultStore needs the adaptive path (stop=StopRule(...)): "
                    "only fixed-size batches are content-addressed units of work")
            if scenario is None:
                raise ValueError(
                    "a ResultStore needs a Scenario: its content hash names "
                    "the store namespace")
            if not scenario.is_declarative:
                # Surface the offending field now, not at digest time.
                scenario.to_dict()
        if batch_packets is not None and int(batch_packets) < 1:
            raise ValueError("batch_packets must be positive")
        self.scenario = scenario
        self.sweep = sweep
        self.stop = stop
        self.store = store
        self.runner = runner
        self.batch_packets = None if batch_packets is None else int(batch_packets)
        self.budget = budget
        #: ``{"hits": int, "misses": int}`` after a store-backed
        #: :meth:`run`; ``None`` otherwise.  ``misses`` is the number of
        #: batches actually simulated — zero on a fully warm re-run.
        self.last_store_stats = None
        self._spec = None

    # ------------------------------------------------------------------ #
    def spec(self):
        """The effective :class:`SweepSpec`: sweep axes + merged constants.

        Built once and cached.  The merged spec is seeded with the
        *resolved entropy* of the caller's sweep, not its raw ``seed``
        argument: for ``seed=None`` (fresh OS entropy) a re-derivation
        would otherwise land on new random streams every call, and the
        store digest would name a spec that was never executed.
        """
        if self._spec is not None:
            return self._spec
        scenario_params = self.scenario.params() if self.scenario else {}
        overlap = set(scenario_params) & set(self.sweep.constants)
        if overlap:
            raise ValueError(
                "parameter(s) defined by both the Scenario and the sweep "
                "constants: %s" % ", ".join(sorted(overlap)))
        axis_overlap = set(scenario_params) & set(self.sweep.axes)
        if axis_overlap:
            raise ValueError(
                "parameter(s) defined by both the Scenario and a sweep axis: "
                "%s; set the Scenario field to None to sweep it"
                % ", ".join(sorted(axis_overlap)))
        constants = dict(scenario_params)
        constants.update(self.sweep.constants)
        self._spec = SweepSpec(self.sweep.axes, constants=constants,
                               seed=self.sweep.seed_entropy)
        return self._spec

    def resolved_batch_packets(self):
        """The adaptive batch quantum this experiment will run with."""
        if self.batch_packets is not None:
            return self.batch_packets
        constants = self.sweep.constants
        return int(constants.get("batch_packets",
                                 constants.get("batch_size", 32)))

    def resolved_runner(self):
        """The runner :meth:`run` will dispatch (default per depth mode)."""
        if self.runner is not None:
            return self.runner
        if self.stop is None:
            return run_scenario_point
        from repro.analysis.adaptive import run_link_ber_batch

        return run_link_ber_batch

    def _runner_name(self):
        """The qualified runner name — part of the store namespace."""
        runner = self.resolved_runner()
        return "%s.%s" % (
            getattr(runner, "__module__", type(runner).__module__),
            getattr(runner, "__qualname__", type(runner).__name__),
        )

    def store_digest(self):
        """The store namespace this experiment's batches are filed under.

        The scenario content hash extended with everything else a batch's
        content is a pure function of: the effective sweep constants, the
        master seed entropy, the batch quantum and the runner's qualified
        name.  Deliberately excluded: the stop rule, the budget, the
        executor and ``on_error`` — those choose *which* pre-determined
        batches run, never what a batch contains, which is exactly what
        makes tighter re-runs resume instead of recompute.
        """
        if self.scenario is None:
            raise ValueError("store_digest() needs a Scenario")
        spec = self.spec()
        digest = hashlib.sha256()
        digest.update(self.scenario.content_hash().encode())
        for name, value in sorted(spec.constants.items()):
            digest.update(b"%s=%s;" % (str(name).encode(), _stable_token(value)))
        digest.update(b"entropy:%r;" % spec.seed_entropy)
        digest.update(b"batch_packets:%d;" % self.resolved_batch_packets())
        digest.update(("runner:%s" % self._runner_name()).encode())
        return digest.hexdigest()

    def _store_metadata(self):
        return {
            "scenario": self.scenario.to_dict(),
            "constants": {str(k): repr(v)
                          for k, v in sorted(self.spec().constants.items())},
            "seed_entropy": repr(self.spec().seed_entropy),
            "batch_packets": self.resolved_batch_packets(),
            "runner": self._runner_name(),
        }

    # ------------------------------------------------------------------ #
    # Batch-granular dispatch hooks (the characterisation service's API)
    # ------------------------------------------------------------------ #
    def store_view(self):
        """The :class:`~repro.analysis.store.StoreView` this experiment's
        batches are filed under, or ``None`` without a store attached."""
        if self.store is None:
            return None
        return self.store.view(self.store_digest(),
                               metadata=self._store_metadata())

    def trajectory(self):
        """A fresh :class:`~repro.analysis.adaptive.AdaptiveTrajectory`
        over this experiment's grid.

        The batch-granular face of :meth:`run`: ``start_round()`` /
        ``consume()`` expose exactly the round decisions the scheduler
        would make, so a long-lived caller (the characterisation service
        broker) can interleave this experiment's batches with other
        work — serving each from the store or a worker fleet — and still
        land on bit-for-bit the rows :meth:`run` produces.  Adaptive
        experiments only: fixed depth has no batch-invariant unit of
        work.
        """
        if self.stop is None:
            raise ValueError(
                "trajectory() needs the adaptive path (stop=StopRule(...)): "
                "only fixed-size batches are dispatchable units of work")
        from repro.analysis.adaptive import AdaptiveTrajectory

        return AdaptiveTrajectory(
            self.spec(), stop=self.stop,
            batch_packets=self.resolved_batch_packets(), budget=self.budget,
        )

    # ------------------------------------------------------------------ #
    def run(self, executor=None, on_error="raise"):
        """Run the experiment and return rows in grid order.

        ``executor`` defaults to
        :func:`~repro.analysis.sweep.executor_from_env`, so
        ``REPRO_SWEEP_WORKERS=N`` shards any experiment without code
        changes; pass ``SweepExecutor("serial")`` explicitly for
        wall-clock-pinned measurements.  Fixed-depth rows follow the
        point-runner's vocabulary; adaptive rows follow
        :meth:`repro.analysis.adaptive.AdaptivePointState.row`.
        """
        if executor is None:
            from repro.analysis.sweep import executor_from_env

            executor = executor_from_env()
        spec = self.spec()
        runner = self.resolved_runner()
        self.last_store_stats = None
        if self.stop is None:
            return executor.run(spec, runner, on_error=on_error)

        from repro.analysis.adaptive import AdaptiveScheduler

        scheduler = AdaptiveScheduler(
            stop=self.stop,
            batch_packets=self.resolved_batch_packets(),
            budget=self.budget,
            executor=executor,
        )
        view = self.store_view()
        rows = scheduler.run(spec, runner, on_error=on_error, store=view)
        if view is not None:
            self.last_store_stats = {"hits": view.hits, "misses": view.misses}
            view.flush_stats()
        return rows

    def __repr__(self):
        return ("Experiment(scenario=%r, sweep=%r, stop=%r, store=%r, "
                "batch_packets=%r, budget=%r)"
                % (self.scenario, self.sweep, self.stop, self.store,
                   self.batch_packets, self.budget))
