"""Adaptive BER characterisation: sequential early stopping, budget reallocation.

The sweep subsystem (:mod:`repro.analysis.sweep`) runs a *fixed* packet
count at every operating point.  That wastes traffic at both ends of a BER
curve: a low-SNR point's BER is statistically settled after the first few
packets, while a high-SNR point finishes with zero or two errors and a
meaninglessly wide confidence interval.  This module turns the grid of
fixed runs into a characterisation *service* — "give me this BER curve to
±X% confidence within budget B" — in two layers:

* :func:`run_point_adaptive` wraps any picklable chunk-runner in a
  sequential-stopping loop for **one** point: fixed-size batches accumulate
  a :class:`~repro.analysis.ber_stats.BerMeasurement` until a
  :class:`StopRule` fires (Wilson interval tight enough, enough errors
  collected, traffic cap hit).
* :class:`AdaptiveScheduler` drives a whole
  :class:`~repro.analysis.sweep.SweepSpec` through a
  :class:`~repro.analysis.sweep.SweepExecutor` (serial or process backend)
  under a **global** traffic budget: each round it dispatches one batch to
  every unconverged point, loosest interval first, so the budget freed by
  early-stopped points flows to the starving high-SNR tail.
* :class:`AdaptiveTrajectory` is the scheduler's round logic factored out
  as a pull-based state machine (``start_round`` / ``consume`` /
  ``rows``), the batch-granular dispatch hook long-lived callers — the
  characterisation service broker in :mod:`repro.service` — use to
  interleave many concurrent runs through one worker fleet.

Determinism
-----------
Results are bit-for-bit independent of stopping decisions, worker count
and scheduling order.  The mechanism is per-batch seed derivation: batch
``k`` of a point draws from ``SeedSequence(entropy, spawn_key=point_key +
(k,))`` (:func:`batch_seed_sequence`) — the same parent/child derivation
the sweep layer uses for points, extended one level down.  Batch ``k``'s
content therefore depends only on *which batch of which point it is*; how
many batches end up running, and on which worker, decides only *whether*
batch ``k``'s (pre-determined) result is included.  Stopping decisions are
made at round barriers from accumulated (deterministic) counts with
index-ordered tie-breaks, so the whole trajectory — packets spent, stop
reasons, every row — replays identically on any backend.

Chunk-runner protocol
---------------------
A chunk-runner is a picklable callable ``runner(batch)`` receiving a
:class:`MeasurementBatch` (the point, the batch index, the batch's packet
count and its derived ``SeedSequence``).  It returns a mapping with the
required count keys

``errors``, ``trials``
    Error and trial counts for the quantity being characterised (bit
    errors and bits for a BER curve).

Every other key is an *extra*, merged across a point's batches in batch
order: values with a ``merge`` method are folded with it, numpy arrays are
concatenated, ints/floats are summed, and anything else keeps the last
batch's value.  :func:`run_link_ber_batch` is the built-in chunk-runner
for the Figure-6-style link workload.
"""

import math
import time

import numpy as np

from repro.analysis.ber_stats import BerMeasurement
from repro.obs.phases import get_phase_hook
from repro.analysis.fused import FusedBatchGroup, FusedBatchRunner, plan_fused_round
from repro.analysis.sweep import SweepError

#: Looseness denominator floor when a rule has no ``ber_floor``: keeps the
#: ranking finite while still ordering zero-error points loosest.
_TINY_BER = 1e-300

#: Reserved keys a chunk-runner result must provide (everything else is an
#: extra merged across batches).
COUNT_KEYS = ("errors", "trials")


# ---------------------------------------------------------------------- #
# Batch seed derivation
# ---------------------------------------------------------------------- #
def batch_seed_sequence(point_seed_sequence, batch_index):
    """The ``SeedSequence`` of batch ``batch_index`` under a point's sequence.

    Extends the point's ``spawn_key`` with the batch index — the same
    derivation ``SeedSequence.spawn`` performs, but keyed by *which batch
    this is* instead of a stateful counter, so the stream of batch ``k``
    cannot depend on stopping decisions, worker count or dispatch order.
    """
    if batch_index < 0:
        raise ValueError("batch_index must be non-negative")
    return np.random.SeedSequence(
        entropy=point_seed_sequence.entropy,
        spawn_key=tuple(point_seed_sequence.spawn_key) + (int(batch_index),),
    )


def batch_store_key(batch):
    """The result-store point key of one batch: its point's seed spawn key.

    The coordinates a :class:`~repro.analysis.store.StoreView` files the
    batch under are exactly the coordinates its random stream derives
    from, so the key IS the stream's identity.  Shared by the scheduler's
    store path and the characterisation service broker — two callers
    filing the same batch must agree on the key byte for byte.
    """
    return tuple(int(word) for word in batch.point.seed_sequence.spawn_key)


class MeasurementBatch:
    """One fixed-size batch of traffic for one operating point.

    Attributes
    ----------
    point:
        The :class:`~repro.analysis.sweep.SweepPoint` being measured.
    index:
        Batch number within the point (0-based; batch ``k`` always carries
        packets ``[k * num_packets, (k + 1) * num_packets)``).
    num_packets:
        Packets in this batch (constant across a run — the invariance unit).
    seed_sequence:
        Independent :class:`numpy.random.SeedSequence` for this batch, from
        :func:`batch_seed_sequence`.
    """

    __slots__ = ("point", "index", "num_packets", "seed_sequence")

    def __init__(self, point, index, num_packets, seed_sequence=None):
        self.point = point
        self.index = int(index)
        self.num_packets = int(num_packets)
        if seed_sequence is None:
            seed_sequence = batch_seed_sequence(point.seed_sequence, index)
        self.seed_sequence = seed_sequence

    @property
    def params(self):
        """The point's parameters (constants plus axis coordinates)."""
        return self.point.params

    @property
    def first_packet_index(self):
        """Absolute index of this batch's first packet within the point."""
        return self.index * self.num_packets

    @property
    def seed(self):
        """A 64-bit integer seed drawn from :attr:`seed_sequence`."""
        return int(self.seed_sequence.generate_state(1, np.uint64)[0])

    def __getitem__(self, name):
        return self.point.params[name]

    def label(self):
        return "%s, batch=%d" % (self.point.label(), self.index)

    def __repr__(self):
        return "MeasurementBatch(point=%d, batch=%d, packets=%d)" % (
            self.point.index, self.index, self.num_packets,
        )


# ---------------------------------------------------------------------- #
# Stopping rules
# ---------------------------------------------------------------------- #
class StopRule:
    """When is a point's measurement good enough to stop?

    Any combination of the criteria may be active; the first one satisfied
    (checked in the order below) names the stop reason recorded in the
    point's row.

    Parameters
    ----------
    rel_half_width:
        Target relative half-width of the Wilson interval: stop with
        ``"converged"`` once ``(high - low) / 2 <= rel_half_width *
        max(ber, ber_floor)`` and at least ``min_errors`` errors were seen.
        ``None`` disables the criterion.
    min_errors:
        Error count required before the interval is trusted (guards against
        stopping on a fluke of very early batches).
    target_errors:
        Stop with ``"target_errors"`` once this many errors accumulated —
        the classic "run until 100 errors" BER-measurement practice, used
        when the goal is a fit rather than a single proportion.
    ber_floor:
        Measurement resolution floor.  A zero-error point stops with
        ``"ber_floor"`` once its Wilson *upper* bound drops below the
        floor: the BER is provably below what the characterisation asked
        for, so more traffic is wasted.  Also floors the looseness
        denominator used for scheduling.
    max_packets:
        Per-point traffic cap; stop with ``"max_packets"`` once spent
        (enforced in whole batches: a point never *starts* a batch at or
        beyond the cap, so it may overshoot by at most one batch).
    confidence:
        Confidence level of the Wilson interval.
    """

    __slots__ = ("rel_half_width", "min_errors", "target_errors", "ber_floor",
                 "max_packets", "confidence")

    def __init__(self, rel_half_width=0.25, min_errors=20, target_errors=None,
                 ber_floor=None, max_packets=None, confidence=0.95):
        if rel_half_width is not None and rel_half_width <= 0:
            raise ValueError("rel_half_width must be positive")
        if min_errors < 0:
            raise ValueError("min_errors must be non-negative")
        if target_errors is not None and target_errors < 1:
            raise ValueError("target_errors must be positive")
        if ber_floor is not None and not 0 < ber_floor < 1:
            raise ValueError("ber_floor must lie in (0, 1)")
        if max_packets is not None and max_packets < 1:
            raise ValueError("max_packets must be positive")
        if not 0 < confidence < 1:
            raise ValueError("confidence must lie in (0, 1)")
        self.rel_half_width = rel_half_width
        self.min_errors = int(min_errors)
        self.target_errors = None if target_errors is None else int(target_errors)
        self.ber_floor = ber_floor
        self.max_packets = None if max_packets is None else int(max_packets)
        self.confidence = confidence

    def replace(self, **changes):
        """A copy of this rule with the given fields replaced."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(changes)
        return StopRule(**fields)

    def to_dict(self):
        """The rule as a plain JSON-able mapping (see :meth:`from_dict`).

        Used by the characterisation service's request hashing and its
        HTTP front door; all fields are numbers or ``None``, so the form
        round-trips exactly.
        """
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        """Rebuild a rule from :meth:`to_dict` output."""
        data = dict(data)
        unknown = set(data) - set(cls.__slots__)
        if unknown:
            raise ValueError(
                "unknown StopRule field(s): %s (known fields: %s)"
                % (", ".join(sorted(unknown)), ", ".join(cls.__slots__)))
        return cls(**data)

    def looseness(self, measurement):
        """How unsettled a measurement still is (the scheduling rank key).

        The Wilson half-width relative to ``max(ber, ber_floor)``; infinite
        for a point with no data yet.  Zero-error points rank loosest
        (their point estimate contributes nothing to the denominator),
        which is exactly the starving high-SNR tail the scheduler should
        feed first.
        """
        if measurement is None or measurement.bits <= 0:
            return math.inf
        low, high = measurement.interval
        half_width = 0.5 * (high - low)
        return half_width / max(measurement.ber, self.ber_floor or _TINY_BER)

    def evaluate(self, measurement, packets_spent):
        """The stop reason for the accumulated state, or ``None`` to continue."""
        if measurement is not None and measurement.bits > 0:
            errors = measurement.errors
            if self.target_errors is not None and errors >= self.target_errors:
                return "target_errors"
            if (self.rel_half_width is not None and errors >= self.min_errors
                    and self.looseness(measurement) <= self.rel_half_width):
                return "converged"
            if self.ber_floor is not None and errors == 0:
                if measurement.interval[1] <= self.ber_floor:
                    return "ber_floor"
        if self.max_packets is not None and packets_spent >= self.max_packets:
            return "max_packets"
        return None

    def __eq__(self, other):
        return isinstance(other, StopRule) and all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    def __repr__(self):
        fields = ", ".join(
            "%s=%r" % (name, getattr(self, name)) for name in self.__slots__
            if getattr(self, name) is not None
        )
        return "StopRule(%s)" % fields


# ---------------------------------------------------------------------- #
# Per-point accumulation
# ---------------------------------------------------------------------- #
def _merge_extras(batches):
    """Merge extra result keys across a point's batches, in batch order.

    Per key: values with a ``merge`` method fold via it, numpy arrays
    concatenate along the first axis, ints/floats (numpy or Python, bools
    excluded) sum, anything else keeps the last batch's value.
    """
    merged = {}
    for extras in batches:
        for key, value in extras.items():
            if key not in merged:
                merged[key] = value
            elif hasattr(merged[key], "merge"):
                merged[key] = merged[key].merge(value)
            elif isinstance(merged[key], np.ndarray):
                merged[key] = np.concatenate([merged[key], value])
            elif isinstance(merged[key], (int, float, np.integer, np.floating)) \
                    and not isinstance(merged[key], bool):
                merged[key] = merged[key] + value
            else:
                merged[key] = value
    return merged


class AdaptivePointState:
    """Accumulated adaptive measurement of one operating point."""

    __slots__ = ("point", "measurement", "packets", "batches", "extras",
                 "stop_reason", "error")

    def __init__(self, point):
        self.point = point
        self.measurement = None
        self.packets = 0
        self.batches = 0
        self.extras = []
        self.stop_reason = None
        self.error = None

    def next_batch(self, batch_packets):
        """The next :class:`MeasurementBatch` this point should run."""
        return MeasurementBatch(self.point, self.batches, batch_packets)

    def consume(self, batch, result, confidence=0.95):
        """Fold one batch's chunk-runner result into the state."""
        result = dict(result)
        try:
            errors = int(result.pop("errors"))
            trials = int(result.pop("trials"))
        except KeyError as exc:
            raise ValueError(
                "chunk-runner result for %s is missing the required %r key "
                "(got keys %r)" % (batch.label(), exc.args[0], sorted(result))
            ) from None
        if trials < 1:
            raise ValueError(
                "chunk-runner returned %d trials for %s; every batch must "
                "measure at least one trial" % (trials, batch.label())
            )
        sample = BerMeasurement(errors, trials, confidence=confidence)
        self.measurement = (
            sample if self.measurement is None else self.measurement.merge(sample)
        )
        self.packets += batch.num_packets
        self.batches += 1
        if result:
            self.extras.append(result)

    def row(self, stop=None):
        """The per-point output row: counts, interval, spend, stop reason."""
        row = dict(self.point.params)
        measurement = self.measurement
        if measurement is None:
            errors, trials, ber = 0, 0, float("nan")
            low, high = 0.0, 1.0
        else:
            errors, trials = measurement.errors, measurement.bits
            ber = measurement.ber
            low, high = measurement.interval
        looseness = (stop or StopRule()).looseness(measurement)
        row.update(
            errors=errors,
            trials=trials,
            ber=ber,
            ber_low=low,
            ber_high=high,
            rel_half_width=looseness,
            packets=self.packets,
            batches=self.batches,
            stop_reason=self.stop_reason,
        )
        if self.error is not None:
            row["error"] = self.error
        row.update(_merge_extras(self.extras))
        return row


def run_point_adaptive(point, chunk_runner, stop, batch_packets=32,
                       max_batches=None):
    """Adaptively measure one point: run batches until ``stop`` fires.

    The in-process sequential loop behind the adaptive mode of
    :func:`repro.analysis.sweep.run_link_ber_point`: batch ``k`` is seeded
    by :func:`batch_seed_sequence`, so the accumulated result is a pure
    function of ``(point, chunk_runner, stop, batch_packets)`` no matter
    where or when it runs.  Returns the per-point row (see
    :meth:`AdaptivePointState.row`).

    ``stop`` must be able to terminate on its own (``max_packets`` or
    ``target_errors`` plus converging statistics) unless ``max_batches``
    bounds the loop explicitly.
    """
    if stop is None:
        raise ValueError("run_point_adaptive needs a StopRule; for fixed "
                         "depth just run the chunk runner directly")
    if batch_packets < 1:
        raise ValueError("batch_packets must be positive")
    if max_batches is None and stop.max_packets is None:
        raise ValueError(
            "unbounded adaptive point: give the StopRule a max_packets cap "
            "or pass max_batches"
        )
    state = AdaptivePointState(point)
    while state.stop_reason is None:
        batch = state.next_batch(batch_packets)
        state.consume(batch, chunk_runner(batch), confidence=stop.confidence)
        state.stop_reason = stop.evaluate(state.measurement, state.packets)
        if state.stop_reason is None and max_batches is not None \
                and state.batches >= max_batches:
            state.stop_reason = "max_batches"
    return state.row(stop)


# ---------------------------------------------------------------------- #
# Executor-facing dispatch shims
# ---------------------------------------------------------------------- #
class _BatchPoint:
    """Present a :class:`MeasurementBatch` to :class:`SweepExecutor`.

    The executor only needs ``index`` (dispatch order within the round),
    ``params`` (merged into the row — empty here, the scheduler reassembles
    rows itself) and ``label`` (error reporting).  A
    :class:`~repro.analysis.fused.FusedBatchGroup` presents the same
    surface, so fused rounds ride the same adapter.
    """

    __slots__ = ("index", "batch")

    def __init__(self, index, batch):
        self.index = int(index)
        self.batch = batch

    @property
    def params(self):
        return {}

    @property
    def coordinates(self):
        return self.batch.point.coordinates

    def label(self):
        return self.batch.label()

    def __repr__(self):
        return "_BatchPoint(%d: %s)" % (self.index, self.label())


class _BatchRunner:
    """Picklable adapter running a chunk-runner on a :class:`_BatchPoint`.

    A :class:`~repro.analysis.fused.FusedBatchGroup` item runs through the
    fused tensor pass (with per-member fallback to the wrapped runner);
    a plain batch runs the chunk-runner directly.
    """

    def __init__(self, chunk_runner):
        self.chunk_runner = chunk_runner

    def __call__(self, batch_point):
        item = batch_point.batch
        if isinstance(item, FusedBatchGroup):
            return FusedBatchRunner(self.chunk_runner)(item)
        return dict(self.chunk_runner(item))


# ---------------------------------------------------------------------- #
# The trajectory state machine
# ---------------------------------------------------------------------- #
class AdaptiveTrajectory:
    """The executor-free core of an adaptive run, one round at a time.

    :class:`AdaptiveScheduler` owns the *loop* (rank, dispatch, fold,
    repeat); this class is the loop's state machine, pulled out so
    batch-granular callers — above all the characterisation service
    broker (:mod:`repro.service.broker`) — can interleave the batches of
    many concurrent runs through one shared worker fleet instead of
    blocking inside a per-run ``scheduler.run()`` call:

    * :meth:`start_round` selects this round's batches (loosest interval
      first, budget permitting) and debits the budget — exactly the
      decisions ``AdaptiveScheduler`` makes at a round barrier.
    * :meth:`consume` folds one batch's result back in, in any order; the
      next round may start once :attr:`round_in_flight` clears.
    * :meth:`rows` renders the accumulated states in grid order.

    Because batch contents are pure functions of ``(point, batch
    index)``, *who* runs a round's batches and in what order they return
    is invisible in the result: driving a trajectory by hand, through a
    scheduler or through the service fleet produces bit-for-bit the same
    rows, budget accounting and stop reasons.
    """

    def __init__(self, spec, stop=None, batch_packets=32, budget=None):
        if batch_packets < 1:
            raise ValueError("batch_packets must be positive")
        if budget is not None and budget < 1:
            raise ValueError("budget must be positive")
        if budget is None and (stop is None or stop.max_packets is None):
            raise ValueError(
                "unbounded adaptive trajectory: give it a budget or the "
                "StopRule a max_packets cap"
            )
        self.stop = stop
        self.batch_packets = int(batch_packets)
        self.budget_left = None if budget is None else int(budget)
        self.confidence = stop.confidence if stop is not None else 0.95
        self.states = [AdaptivePointState(point) for point in spec]
        self._outstanding = {}

    # ------------------------------------------------------------------ #
    @property
    def round_in_flight(self):
        """Whether a started round still has unconsumed batches."""
        return bool(self._outstanding)

    @property
    def finished(self):
        """Every point stopped and no batch is outstanding."""
        return not self._outstanding and all(
            state.stop_reason is not None for state in self.states)

    def _rank(self, states):
        """Active states, loosest measurement first, grid index tie-break."""
        rule = self.stop or StopRule()
        return sorted(
            states,
            key=lambda state: (-rule.looseness(state.measurement),
                               state.point.index),
        )

    def _affordable(self, ranked):
        """How many of the ranked states this round's budget can fund."""
        if self.budget_left is None:
            return len(ranked)
        return min(len(ranked), self.budget_left // self.batch_packets)

    def start_round(self):
        """Select and return this round's batches, debiting the budget.

        Empty when the trajectory is finished — including the case where
        the remaining budget cannot fund a single batch, in which case
        every still-active point is stopped with reason ``"budget"``
        first.  The budget counts *dispatched* traffic: every returned
        batch is debited here, whether its result later comes from a
        simulation, a cache or an error (a failed batch still simulated,
        or tried to, so it must not be silently refunded).
        """
        if self._outstanding:
            raise RuntimeError(
                "a round is still in flight (%d batch(es) unconsumed); "
                "consume() them before starting the next round"
                % len(self._outstanding))
        active = [s for s in self.states if s.stop_reason is None]
        if not active:
            return []
        ranked = self._rank(active)
        selected = ranked[:self._affordable(ranked)]
        if not selected:
            for state in active:
                state.stop_reason = "budget"
            return []
        batches = [state.next_batch(self.batch_packets) for state in selected]
        if self.budget_left is not None:
            self.budget_left -= sum(batch.num_packets for batch in batches)
        self._outstanding = {
            (batch.point.index, batch.index): state
            for state, batch in zip(selected, batches)
        }
        return batches

    def consume(self, batch, result):
        """Fold one outstanding batch's result in; returns its point state.

        ``result`` is a chunk-runner mapping (or a captured ``{"error":
        ...}`` row, which stops the point with reason ``"error"``).
        Batches of one round may be consumed in any order; consuming a
        batch that was never started raises.
        """
        key = (batch.point.index, batch.index)
        try:
            state = self._outstanding.pop(key)
        except KeyError:
            raise ValueError(
                "batch %s was not started by this trajectory's current "
                "round" % batch.label()) from None
        if "error" in result and "errors" not in result:
            state.stop_reason = "error"
            state.error = result["error"]
            return state
        state.consume(batch, result, confidence=self.confidence)
        if self.stop is not None:
            state.stop_reason = self.stop.evaluate(state.measurement,
                                                   state.packets)
        return state

    def rows(self):
        """The per-point rows accumulated so far, in grid order."""
        return [state.row(self.stop) for state in self.states]

    def __repr__(self):
        done = sum(1 for s in self.states if s.stop_reason is not None)
        return ("AdaptiveTrajectory(points=%d, stopped=%d, in_flight=%d, "
                "budget_left=%r)" % (len(self.states), done,
                                     len(self._outstanding), self.budget_left))


# ---------------------------------------------------------------------- #
# The scheduler
# ---------------------------------------------------------------------- #
class AdaptiveScheduler:
    """Drive a sweep adaptively under a global traffic budget.

    Each round, every unconverged point is ranked by
    :meth:`StopRule.looseness` (ties broken by grid index) and dispatched
    one :class:`MeasurementBatch` through the executor, loosest first; as
    points stop, the batches they no longer consume are — implicitly —
    budget reallocated to the points still running, which is how the
    starving high-SNR tail ends up with most of the traffic.  When the
    remaining budget cannot fund a round for every active point, only the
    loosest affordable subset runs; when it cannot fund a single batch,
    every still-active point stops with reason ``"budget"``.

    Parameters
    ----------
    stop:
        The :class:`StopRule` shared by every point.  ``None`` disables
        convergence checks entirely: points run round-robin until the
        budget is exhausted (pure budget-driven measurement).
    batch_packets:
        Packets per dispatched batch — the chunk-invariance unit.  Results
        for a given ``batch_packets`` never depend on backend or budget;
        changing ``batch_packets`` changes the random draws (it is part of
        the workload, like ``packet_bits``).
    budget:
        Global traffic budget in packets (``None`` for uncapped; the stop
        rule must then carry a ``max_packets`` cap so the run terminates).
    executor:
        The :class:`~repro.analysis.sweep.SweepExecutor` used to run each
        round's batches (default: a fresh serial executor).  The chunk
        runner must be picklable for a process executor, exactly as for a
        plain sweep.
    fused:
        When ``True`` (default) and the chunk-runner is the built-in link
        runner, each round's store-miss batches are grouped by
        :func:`~repro.analysis.fused.fuse_key` and simulated as fused
        tensor passes (see :mod:`repro.analysis.fused`).  Purely a
        throughput knob: under the exact float64 policy the rows are
        bit-for-bit identical with it on or off.
    """

    def __init__(self, stop=None, batch_packets=32, budget=None, executor=None,
                 fused=True):
        if batch_packets < 1:
            raise ValueError("batch_packets must be positive")
        if budget is not None and budget < 1:
            raise ValueError("budget must be positive")
        if budget is None and (stop is None or stop.max_packets is None):
            raise ValueError(
                "unbounded adaptive sweep: give the scheduler a budget or "
                "the StopRule a max_packets cap"
            )
        if executor is None:
            from repro.analysis.sweep import SweepExecutor

            executor = SweepExecutor("serial")
        self.stop = stop
        self.batch_packets = int(batch_packets)
        self.budget = None if budget is None else int(budget)
        self.executor = executor
        self.fused = bool(fused)

    # ------------------------------------------------------------------ #
    def run(self, spec, chunk_runner=None, on_error="raise", store=None):
        """Adaptively measure every point of ``spec``; rows in grid order.

        Each row is the point's ``params`` plus the accumulated counts,
        Wilson interval bounds, looseness, packets/batches spent, the
        ``stop_reason`` (``"converged"``, ``"target_errors"``,
        ``"ber_floor"``, ``"max_packets"``, ``"budget"`` or ``"error"``)
        and the merged extras.  ``on_error`` follows the executor contract:
        ``"raise"`` aborts on the first failing batch, ``"capture"`` stops
        the affected point with reason ``"error"`` and keeps going.

        ``store`` is an optional batch cache — a
        :class:`~repro.analysis.store.StoreView` keyed by ``(point
        spawn_key, batch index)``, normally supplied by
        :meth:`repro.analysis.scenario.Experiment.run`.  Batches found in
        the store are consumed without touching the executor; simulated
        batches are appended after they return.  Because a cached batch
        carries exactly the result its simulation would have produced,
        the trajectory — stopping decisions, budget accounting, rows —
        is bit-for-bit identical to the cold run's.  Cache hits debit the
        budget like any dispatched batch for the same reason: a warm run
        must replay the cold run's decisions, not rediscover them with
        free traffic.  Error rows are never cached.
        """
        if on_error not in ("raise", "capture"):
            raise ValueError("on_error must be 'raise' or 'capture'")
        if chunk_runner is None:
            chunk_runner = run_link_ber_batch
        trajectory = AdaptiveTrajectory(
            spec, stop=self.stop, batch_packets=self.batch_packets,
            budget=self.budget,
        )
        runner = _BatchRunner(chunk_runner)

        # One worker pool for the whole run: a round often carries only a
        # few small batches, so paying pool startup per round would dwarf
        # the work (the session is a no-op for serial executors).
        with self.executor.session():
            while True:
                batches = trajectory.start_round()
                if not batches:
                    break
                results = self._round_results(batches, runner, on_error, store)
                for batch, result in zip(batches, results):
                    trajectory.consume(batch, result)
        return trajectory.rows()

    def _round_results(self, batches, runner, on_error, store):
        """One round's chunk-runner results, served from the store or run.

        Returns results aligned with ``batches``; only store misses are
        dispatched through the executor, and their fresh results are
        appended to the store (errors excluded).  With :attr:`fused` on
        and the built-in link chunk-runner, misses are grouped by
        :func:`~repro.analysis.fused.fuse_key` and each group runs as one
        fused tensor pass, its per-member results distributed back to the
        member batches' slots.
        """
        results = [None] * len(batches)
        to_run = list(range(len(batches)))
        if store is not None:
            to_run = []
            for i, batch in enumerate(batches):
                cached = store.get(batch_store_key(batch), batch.index,
                                   batch.num_packets)
                if cached is None:
                    to_run.append(i)
                else:
                    results[i] = cached
        if not to_run:
            return results
        slot_of = {(batches[i].point.index, batches[i].index): i
                   for i in to_run}
        work = [batches[i] for i in to_run]
        if self.fused and runner.chunk_runner is run_link_ber_batch:
            groups, singles = plan_fused_round(work)
            work = groups + singles
        dispatch = [_BatchPoint(position, item)
                    for position, item in enumerate(work)]
        # In "raise" mode the executor itself raises SweepError naming
        # the failing (point, batch) with the full worker traceback;
        # per-member failures inside a fused group are captured by the
        # runner instead and re-raised below with the member's label.
        fresh = self.executor.run(dispatch, runner, on_error=on_error)

        def settle(batch, result):
            i = slot_of[(batch.point.index, batch.index)]
            failed = "error" in result and "errors" not in result
            if failed and on_error == "raise":
                raise SweepError(_BatchPoint(i, batch), result["error"])
            results[i] = result
            if store is not None and not failed:
                store.put(batch_store_key(batch), batch.index,
                          batch.num_packets, result)

        for item, result in zip(work, fresh):
            if isinstance(item, FusedBatchGroup):
                members = result.get("results")
                if members is None:
                    # The whole group errored before the per-member
                    # fallback could run; the error applies to every slot.
                    members = [result] * len(item.batches)
                for batch, member in zip(item.batches, members):
                    settle(batch, member)
            else:
                settle(item, result)
        return results

    def __repr__(self):
        return "AdaptiveScheduler(stop=%r, batch_packets=%d, budget=%r, executor=%r)" % (
            self.stop, self.batch_packets, self.budget, self.executor,
        )


# ---------------------------------------------------------------------- #
# Built-in chunk-runner
# ---------------------------------------------------------------------- #
def run_link_ber_batch(batch):
    """Picklable chunk-runner: one batch of link packets at one point.

    The adaptive analogue of
    :func:`repro.analysis.sweep.run_link_ber_point`: understands the same
    parameters (``rate_mbps``, ``snr_db``, ``decoder``, ``packet_bits``,
    ``batch_size``, ``fading``, ``llr_format``, ``demapper_scaled``), but
    simulates ``batch.num_packets`` packets seeded from ``batch.seed``.
    Absolute packet indices (for swept-SNR or fading callables) start at
    ``batch.first_packet_index``, so a point's fading trace is one
    continuous process regardless of how many batches end up running.
    """
    from repro.analysis.sweep import link_simulator_for_params

    simulator = link_simulator_for_params(
        batch.point.params, seed=batch.seed, point_seed=batch.point.seed
    )
    # Phase hook: the per-batch path runs the whole chain inside the
    # simulator, so it reports as one "link-simulate" phase (the fused
    # path reports its stages individually — see repro.analysis.fused).
    hook = get_phase_hook()
    if hook is not None:
        phase_ts = time.time()
        phase_t0 = time.perf_counter()
    result = simulator.run(
        batch.num_packets,
        batch_size=int(batch.point.params.get("batch_size", batch.num_packets)),
        start_index=batch.first_packet_index,
    )
    if hook is not None:
        hook("link-simulate", phase_ts, time.perf_counter() - phase_t0,
             {"packets": batch.num_packets})
    return {
        "errors": int(result.bit_errors.sum()),
        "trials": int(result.num_bits),
        "packet_errors": int(result.packet_errors.sum()),
    }
