"""Content-addressed persistence for characterisation batches.

The adaptive subsystem's central invariant — batch ``k`` of a point is a
pure function of ``(spec, point, batch index)`` — makes per-batch results
cacheable on disk: once simulated, a batch's result never changes, so a
re-run can serve it from the store and simulate only the batch indices it
has never seen.  This module is that cache:

* :class:`ResultStore` is a directory of JSON-lines files, one per
  *experiment namespace* (see
  :meth:`repro.analysis.scenario.Experiment.store_digest`: the scenario
  content hash extended with constants, master seed entropy, batch
  quantum and runner identity).
* :class:`StoreView` is one namespace's read/append handle, keyed by
  ``(point spawn_key, batch index)`` — the same coordinates the seed
  derivation uses, so the key IS the random stream's identity.
* ``python -m repro.analysis.store ls|stats|gc`` is the maintenance CLI
  (see :func:`main`): list namespaces, show per-namespace content and
  hit/miss statistics, and garbage-collect stale curves.

Resume semantics
----------------
The store holds *batch* results, never rows: stopping decisions are
replayed by the scheduler from the (cached or fresh) batch counts, which
is what makes a warm run bit-for-bit identical to a cold one — packets
spent and stop reasons included — while a tighter
:class:`~repro.analysis.adaptive.StopRule` re-run simulates only the
missing batch indices.  Nothing about the stop rule, budget or executor
enters the namespace digest.

Durability and concurrency model
--------------------------------
Records are appended as exactly one JSON line per batch, written with a
single ``write(2)`` on an ``O_APPEND`` descriptor while holding a
per-namespace advisory lock (``flock``, where the platform has it).
Before appending, the writer folds any lines other writers appended since
its last read into its index and skips the write if the key is already
present — so several processes characterising overlapping sweeps into one
store race safely: complete lines never interleave, and no ``(point,
batch)`` key is ever stored twice.  Readers pick up concurrent appends
lazily (a lookup miss re-scans the file tail before being counted).

A truncated final line (e.g. a killed run) is dropped on load — with a
one-time :mod:`logging` warning naming the namespace and line number —
and the next locked append heals it by terminating the partial line
before writing, so no later record can merge into it.

Each namespace may carry a ``<digest>.jsonl.stats`` sidecar with
cumulative hit/miss counters and a last-used timestamp, written
best-effort by :meth:`StoreView.flush_stats` (the ``Experiment`` front
door and the characterisation service call it after each run).  The
sidecar only informs the maintenance CLI — it never affects results.

Values must be JSON-representable or numpy: arrays round-trip through a
tagged encoding that preserves dtype and shape bit for bit (floats
survive exactly — JSON rendering uses ``repr``-faithful shortest floats).
Tuples and arbitrary objects are rejected with an error naming the key:
silently coercing them would break the warm-equals-cold guarantee.
"""

import argparse
import json
import logging
import os
import sys
import time
from datetime import datetime

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.obs import metrics as obs_metrics

#: Store lookup/append latency in the process-global registry (store
#: views are created per request, so a per-instance registry would
#: scatter the series): ``op`` is get/put, ``outcome`` hit/miss for
#: lookups and written/duplicate for appends.
_STORE_SECONDS = obs_metrics.GLOBAL.histogram(
    "repro_store_seconds",
    "ResultStore operation latency by operation and outcome.",
    labelnames=("op", "outcome"))

#: On-disk format version, written to each file's header line.
FORMAT_VERSION = 1

#: Suffix of the per-namespace usage-statistics sidecar file.
STATS_SUFFIX = ".stats"

_SCALARS = (str, int, float)

_logger = logging.getLogger(__name__)

#: Namespace files already warned about in this process — the truncation
#: warning is one-time per file, not per load or per bad line.
_WARNED_TRUNCATED = set()


class StoreError(RuntimeError):
    """A result store file or record is unusable as asked."""


def _encode_value(value, key):
    """JSON-able encoding of one result value, ndarrays tagged."""
    if isinstance(value, np.ndarray):
        if value.dtype.kind not in "biuf":
            raise StoreError(
                "result value for key %r is a %s array; only bool/int/float "
                "arrays have an exact JSON round-trip" % (key, value.dtype))
        return {"__ndarray__": value.tolist(),
                "dtype": str(value.dtype),
                "shape": list(value.shape)}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, bool) or isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return [_encode_value(item, key) for item in value]
    if isinstance(value, dict):
        return {str(name): _encode_value(item, key)
                for name, item in value.items()}
    raise StoreError(
        "result value for key %r is not storable: %r (type %s); the store "
        "accepts JSON scalars, lists, dicts and numpy values — tuples and "
        "objects would not survive the round-trip bit for bit"
        % (key, value, type(value).__name__))


def _decode_value(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"],
                            dtype=value["dtype"]).reshape(value["shape"])
        return {name: _decode_value(item) for name, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def _normalise_point_key(point_key):
    try:
        return tuple(int(word) for word in point_key)
    except (TypeError, ValueError):
        raise StoreError("point_key must be a sequence of integers; got %r"
                         % (point_key,)) from None


def _lock(fd):
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_EX)


def _unlock(fd):
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_UN)


def read_sidecar_stats(path):
    """The usage-stats sidecar mapping for a namespace file (``{}`` if none).

    A missing or corrupt sidecar is simply empty — it is advisory
    metadata, so it must never make a namespace unreadable.
    """
    try:
        with open(path + STATS_SUFFIX, "r", encoding="utf-8") as handle:
            stats = json.load(handle)
    except (OSError, ValueError):
        return {}
    return stats if isinstance(stats, dict) else {}


class StoreView:
    """One experiment namespace of a :class:`ResultStore`.

    Records are keyed by ``(point spawn_key, batch index)``;
    :meth:`get` / :meth:`put` maintain an in-memory index over the
    append-only JSON-lines file.  ``hits`` and ``misses`` count this
    view's lookups — ``misses`` is exactly the number of batches a
    store-backed run had to simulate.

    The index folds in other writers' appends lazily: a lookup that would
    miss re-scans the file tail first, and :meth:`put` re-checks under the
    namespace lock, so concurrent views of one namespace (several
    processes, or several requests inside the characterisation service)
    converge on the same records without ever duplicating a key on disk.
    """

    def __init__(self, path, metadata=None):
        self.path = str(path)
        self.metadata = metadata
        #: Header metadata read back from the file (``None`` until a
        #: header line has been seen).
        self.stored_metadata = None
        self.hits = 0
        self.misses = 0
        self._index = None
        self._offset = 0   # bytes of the file already folded into the index
        self._lines = 0    # newline-terminated lines already folded
        self._flushed = (0, 0)

    @property
    def namespace(self):
        """The namespace digest this view's file is named after."""
        name = os.path.basename(self.path)
        return name[:-len(".jsonl")] if name.endswith(".jsonl") else name

    # ------------------------------------------------------------------ #
    def _ensure(self):
        if self._index is None:
            self._index = {}
            self._offset = 0
            self._lines = 0
            self._refresh()
        return self._index

    def _refresh(self):
        """Fold lines appended since the last read into the index.

        Only complete (newline-terminated) lines are consumed: appends
        are single ``O_APPEND`` writes, so a reader sees each record
        either not at all or whole, and a trailing partial line from a
        killed writer stays pending until a locked append heals it.
        """
        index = self._index
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return index
        if size <= self._offset:
            return index
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            blob = handle.read()
        end = blob.rfind(b"\n")
        if end < 0:
            return index
        self._offset += end + 1
        for raw in blob[:end].split(b"\n"):
            self._lines += 1
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._warn_unparseable(self._lines)
                continue
            if "format" in record:  # header line
                if record["format"] != FORMAT_VERSION:
                    raise StoreError(
                        "store file %s has format %r; this reader "
                        "understands %r"
                        % (self.path, record["format"], FORMAT_VERSION))
                if self.stored_metadata is None:
                    self.stored_metadata = record.get("metadata")
                continue
            key = (tuple(record["point"]), int(record["batch"]))
            # First writer wins, matching put()'s idempotence: a racing
            # duplicate (which the locked append prevents anyway) could
            # only ever carry the identical deterministic result.
            index.setdefault(key, record)
        return index

    def _warn_unparseable(self, line_number):
        path = os.path.abspath(self.path)
        if path in _WARNED_TRUNCATED:
            return
        _WARNED_TRUNCATED.add(path)
        _logger.warning(
            "result store namespace %s: dropping unparseable record at "
            "line %d of %s (truncated by a killed run?); the affected "
            "batch will be resimulated on demand",
            self.namespace, line_number, self.path)

    def _append_locked(self, key, record):
        """Append one record unless ``key`` landed on disk meanwhile.

        The whole check-and-append runs under the namespace's advisory
        lock; the record (plus the header, on first write, plus a healing
        newline after a truncated line) goes out in a single ``write(2)``
        on an ``O_APPEND`` descriptor, so concurrent writers can never
        interleave bytes or double-store a key.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        line = (json.dumps(record) + "\n").encode("utf-8")
        # O_RDWR, not O_WRONLY: the truncation check reads the last byte
        # back through the same descriptor.
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            _lock(fd)
            try:
                if key in self._refresh():
                    return False
                payload = b""
                size = os.fstat(fd).st_size
                if size == 0:
                    header = {"format": FORMAT_VERSION}
                    if self.metadata:
                        header["metadata"] = self.metadata
                    payload += (json.dumps(header) + "\n").encode("utf-8")
                elif os.pread(fd, 1, size - 1) != b"\n":
                    payload += b"\n"  # terminate a truncated trailing line
                os.write(fd, payload + line)
            finally:
                _unlock(fd)
        finally:
            os.close(fd)
        return True

    # ------------------------------------------------------------------ #
    def __len__(self):
        return len(self._ensure())

    def keys(self):
        """All stored ``(point spawn_key, batch index)`` keys."""
        return list(self._ensure())

    def known_batches(self, point_key):
        """Sorted batch indices stored for one point."""
        point_key = _normalise_point_key(point_key)
        return sorted(batch for point, batch in self._ensure()
                      if point == point_key)

    def get(self, point_key, batch_index, num_packets):
        """The stored result for one batch, or ``None`` (counted a miss).

        ``num_packets`` is verified against the stored record — a mismatch
        means the caller's namespace digest is wrong (or the file was
        tampered with), and serving the record anyway would silently break
        the chunk-invariance contract, so it raises instead.
        """
        t0 = time.perf_counter()
        result = self._get(point_key, batch_index, num_packets)
        _STORE_SECONDS.labels(
            op="get", outcome="miss" if result is None else "hit").observe(
                time.perf_counter() - t0)
        return result

    def _get(self, point_key, batch_index, num_packets):
        key = (_normalise_point_key(point_key), int(batch_index))
        record = self._ensure().get(key)
        if record is None:
            # Another process may have appended since our last read (two
            # services sharing one store): fold in any new complete lines
            # before declaring a miss.
            record = self._refresh().get(key)
        if record is None:
            self.misses += 1
            return None
        if int(record["num_packets"]) != int(num_packets):
            raise StoreError(
                "store %s holds batch %d of point %r at %d packets, but %d "
                "were requested; the experiment namespace digest should have "
                "separated these" % (self.path, key[1], key[0],
                                     record["num_packets"], num_packets))
        self.hits += 1
        return {name: _decode_value(value)
                for name, value in record["result"].items()}

    def peek(self, point_key, batch_index, num_packets):
        """Like :meth:`get`, but an absent batch is *not* counted a miss.

        Built for pollers — a lease-waiting service replica probing for
        another replica's result every fraction of a second would
        otherwise inflate :attr:`misses` (which usage accounting treats
        as "batches this view had to simulate") by orders of magnitude.
        A successful probe still counts a hit: the batch really was
        served from the store.
        """
        key = (_normalise_point_key(point_key), int(batch_index))
        record = self._ensure().get(key)
        if record is None:
            record = self._refresh().get(key)
        if record is None:
            return None
        misses = self.misses
        try:
            return self.get(point_key, batch_index, num_packets)
        finally:
            self.misses = misses  # a racing compaction cannot re-add one

    def put(self, point_key, batch_index, num_packets, result):
        """Append one batch result (idempotent for an existing key)."""
        t0 = time.perf_counter()
        key = (_normalise_point_key(point_key), int(batch_index))
        index = self._ensure()
        if key in index:
            _STORE_SECONDS.labels(op="put", outcome="duplicate").observe(
                time.perf_counter() - t0)
            return
        record = {
            "point": list(key[0]),
            "batch": key[1],
            "num_packets": int(num_packets),
            "result": {str(name): _encode_value(value, name)
                       for name, value in dict(result).items()},
        }
        self._append_locked(key, record)
        index.setdefault(key, record)
        _STORE_SECONDS.labels(op="put", outcome="written").observe(
            time.perf_counter() - t0)

    def flush_stats(self, now=None):
        """Best-effort merge of this view's lookup counters into the sidecar.

        Writes cumulative ``hits``/``misses``/``uses`` and a ``last_used``
        timestamp to ``<namespace>.jsonl.stats`` (atomic replace).  The
        ``Experiment`` front door and the characterisation service call
        this after each store-backed run; ``repro-store stats`` reports
        the numbers and ``repro-store gc --days N`` ages on ``last_used``.
        Racing writers may undercount — the sidecar informs maintenance
        and never affects results.  Returns the merged mapping, or
        ``None`` when there was nothing new to record.
        """
        delta_hits = self.hits - self._flushed[0]
        delta_misses = self.misses - self._flushed[1]
        if delta_hits == 0 and delta_misses == 0:
            return None
        stats = read_sidecar_stats(self.path)
        stats["hits"] = int(stats.get("hits", 0)) + delta_hits
        stats["misses"] = int(stats.get("misses", 0)) + delta_misses
        stats["uses"] = int(stats.get("uses", 0)) + 1
        stats["last_used"] = float(time.time() if now is None else now)
        scratch = "%s%s.%d" % (self.path, STATS_SUFFIX, os.getpid())
        try:
            with open(scratch, "w", encoding="utf-8") as handle:
                json.dump(stats, handle)
            os.replace(scratch, self.path + STATS_SUFFIX)
        except OSError:
            try:
                os.remove(scratch)
            except OSError:
                pass
            return None
        self._flushed = (self.hits, self.misses)
        return stats

    def summary(self):
        """Content and usage summary of this namespace, for the CLI."""
        index = self._ensure()
        points = {point for point, _ in index}
        try:
            size = os.path.getsize(self.path)
            mtime = os.path.getmtime(self.path)
        except OSError:
            size, mtime = 0, None
        return {
            "namespace": self.namespace,
            "path": self.path,
            "points": len(points),
            "batches": len(index),
            "packets": sum(int(record["num_packets"])
                           for record in index.values()),
            "size_bytes": size,
            "mtime": mtime,
            "metadata": self.stored_metadata,
            "stats": read_sidecar_stats(self.path),
        }

    def __repr__(self):
        return "StoreView(%r, records=%d, hits=%d, misses=%d)" % (
            self.path, len(self._ensure()), self.hits, self.misses)


class ResultStore:
    """A directory of per-experiment-namespace JSON-lines batch caches.

    Parameters
    ----------
    root:
        Directory path; created on first write.  One
        ``<namespace digest>.jsonl`` file per experiment namespace.
    """

    def __init__(self, root):
        self.root = str(root)

    def path_for(self, digest):
        """The namespace file path for one digest (validated hex)."""
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise StoreError(
                "namespace digest must be a hex string (from "
                "Experiment.store_digest()); got %r" % (digest,))
        return os.path.join(self.root, digest + ".jsonl")

    def view(self, digest, metadata=None):
        """The :class:`StoreView` for one namespace digest."""
        return StoreView(self.path_for(digest), metadata=metadata)

    def digests(self):
        """Sorted namespace digests already present under ``root``."""
        if not os.path.isdir(self.root):
            return []
        return sorted(name[:-len(".jsonl")] for name in os.listdir(self.root)
                      if name.endswith(".jsonl"))

    def remove(self, digest):
        """Delete one namespace file and its stats sidecar; bytes freed."""
        path = self.path_for(digest)
        freed = 0
        for victim in (path, path + STATS_SUFFIX):
            try:
                freed += os.path.getsize(victim)
                os.remove(victim)
            except OSError:
                pass
        return freed

    def __repr__(self):
        return "ResultStore(%r, namespaces=%d)" % (self.root, len(self.digests()))


# ---------------------------------------------------------------------- #
# The `repro-store` maintenance CLI
# ---------------------------------------------------------------------- #
def _format_when(timestamp):
    if timestamp is None:
        return "-"
    return datetime.fromtimestamp(timestamp).strftime("%Y-%m-%d %H:%M")


def _scenario_hash(summary):
    """The scenario content hash a namespace was filed under, or ``None``.

    Recomputed from the header metadata's declarative scenario; a
    namespace without metadata (hand-made files) simply has no scenario
    hash and never matches ``gc --scenario``.
    """
    metadata = summary.get("metadata") or {}
    scenario = metadata.get("scenario")
    if not isinstance(scenario, dict):
        return None
    from repro.analysis.scenario import Scenario

    try:
        return Scenario.from_dict(scenario).content_hash()
    except (TypeError, ValueError):
        return None


def _summaries(store, prefix=None):
    out = []
    for digest in store.digests():
        if prefix and not digest.startswith(prefix):
            continue
        out.append(store.view(digest).summary())
    return out


def _last_used(summary):
    """Best last-used estimate: the stats sidecar, else the file mtime."""
    stats = summary.get("stats") or {}
    last = stats.get("last_used")
    if isinstance(last, (int, float)):
        return float(last)
    return summary.get("mtime")


def _cmd_ls(store, args, out):
    rows = _summaries(store, args.prefix)
    print("%-18s %7s %8s %9s %10s  %-16s %s"
          % ("namespace", "points", "batches", "packets", "bytes",
             "modified", "last-used"), file=out)
    for summary in rows:
        stats = summary["stats"]
        print("%-18s %7d %8d %9d %10d  %-16s %s"
              % (summary["namespace"][:16] + "..", summary["points"],
                 summary["batches"], summary["packets"],
                 summary["size_bytes"], _format_when(summary["mtime"]),
                 _format_when(stats.get("last_used"))), file=out)
    print("%d namespace(s) under %s" % (len(rows), store.root), file=out)
    return 0


def _cmd_stats(store, args, out):
    rows = _summaries(store, args.prefix)
    for summary in rows:
        stats = summary["stats"]
        metadata = summary["metadata"] or {}
        print("namespace %s" % summary["namespace"], file=out)
        print("  scenario hash: %s" % (_scenario_hash(summary) or "-"),
              file=out)
        print("  runner:        %s" % metadata.get("runner", "-"), file=out)
        print("  batch quantum: %s packets"
              % metadata.get("batch_packets", "-"), file=out)
        print("  content:       %d point(s), %d batch(es), %d packet(s), "
              "%d bytes" % (summary["points"], summary["batches"],
                            summary["packets"], summary["size_bytes"]),
              file=out)
        print("  lookups:       %d hit(s), %d miss(es) over %d run(s)"
              % (stats.get("hits", 0), stats.get("misses", 0),
                 stats.get("uses", 0)), file=out)
        print("  last used:     %s   modified: %s"
              % (_format_when(_last_used(summary)),
                 _format_when(summary["mtime"])), file=out)
    if not rows:
        print("no namespaces match under %s" % store.root, file=out)
    return 0


def _cmd_gc(store, args, out):
    filtering = (args.days is not None or args.prefix or args.scenario)
    if not filtering and args.max_bytes is None:
        print("gc: nothing selected; pass --days N, --prefix HEX, "
              "--scenario HEX and/or --max-bytes N", file=out)
        return 2
    horizon = None
    if args.days is not None:
        horizon = time.time() - args.days * 86400.0
    victims, survivors = [], []
    for summary in _summaries(store):
        digest = summary["namespace"]
        selected = filtering
        if args.prefix and not digest.startswith(args.prefix):
            selected = False
        if selected and args.scenario:
            scenario_hash = _scenario_hash(summary)
            if not scenario_hash or not scenario_hash.startswith(args.scenario):
                selected = False
        if selected and horizon is not None:
            last = _last_used(summary)
            if last is not None and last >= horizon:
                selected = False
        (victims if selected else survivors).append(summary)
    if args.max_bytes is not None:
        # LRU byte budget over whatever the other selectors spared:
        # evict coldest namespaces (stats-sidecar last-used, mtime
        # fallback, never-used treated coldest of all) until the store
        # fits the budget.
        total = sum(summary["size_bytes"] for summary in survivors)
        survivors.sort(key=lambda summary: _last_used(summary) or 0.0)
        for summary in survivors:
            if total <= args.max_bytes:
                break
            victims.append(summary)
            total -= summary["size_bytes"]
    removed = freed = 0
    for summary in victims:
        digest = summary["namespace"]
        removed += 1
        if args.dry_run:
            freed += summary["size_bytes"]
            print("would remove %s (%d batches, %d bytes, last used %s)"
                  % (digest, summary["batches"], summary["size_bytes"],
                     _format_when(_last_used(summary))), file=out)
        else:
            freed += store.remove(digest)
            print("removed %s (%d batches)" % (digest, summary["batches"]),
                  file=out)
    verb = "would remove" if args.dry_run else "removed"
    print("gc: %s %d namespace(s), %d bytes" % (verb, removed, freed),
          file=out)
    return 0


def main(argv=None, out=None):
    """``repro-store``: the store maintenance command line.

    Run as ``python -m repro.analysis.store <command> <root> [...]``:

    ``ls``
        One line per namespace: points, batches, packets, size, modified
        and last-used times.
    ``stats``
        Per-namespace detail, including the scenario hash, the runner,
        and the cumulative hit/miss counters from the stats sidecar.
    ``gc``
        Remove namespaces unused for ``--days N``, and/or matching a
        ``--prefix`` of the namespace digest or a ``--scenario`` hash
        prefix; ``--max-bytes N`` additionally enforces an LRU byte
        budget, evicting the coldest surviving namespaces (by the usage
        sidecar's last-used, file mtime as fallback) until the store
        fits.  ``--dry-run`` previews without deleting.
    """
    out = sys.stdout if out is None else out
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.store",
        description="Inspect and maintain a characterisation ResultStore "
                    "directory.")
    commands = parser.add_subparsers(dest="command", required=True)

    ls = commands.add_parser("ls", help="list namespaces with content counts")
    ls.add_argument("root", help="store directory")
    ls.add_argument("--prefix", default=None,
                    help="only namespaces whose digest starts with this")

    stats = commands.add_parser("stats",
                                help="per-namespace content and hit/miss stats")
    stats.add_argument("root", help="store directory")
    stats.add_argument("--prefix", default=None,
                       help="only namespaces whose digest starts with this")

    gc = commands.add_parser("gc", help="remove stale or matching namespaces")
    gc.add_argument("root", help="store directory")
    gc.add_argument("--days", type=float, default=None,
                    help="remove namespaces unused for this many days")
    gc.add_argument("--prefix", default=None,
                    help="remove namespaces whose digest starts with this")
    gc.add_argument("--scenario", default=None,
                    help="remove namespaces whose scenario hash starts with this")
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="LRU byte budget: after the other selectors, evict "
                         "the coldest namespaces (by sidecar last-used) "
                         "until the store fits this many bytes")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without deleting")

    args = parser.parse_args(argv)
    store = ResultStore(args.root)
    command = {"ls": _cmd_ls, "stats": _cmd_stats, "gc": _cmd_gc}[args.command]
    return command(store, args, out)
