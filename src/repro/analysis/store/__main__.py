"""Entry point for ``python -m repro.analysis.store`` (the repro-store CLI)."""

import sys

from repro.analysis.store import main

if __name__ == "__main__":
    sys.exit(main())
