"""Analysis utilities shared by the experiments and benchmarks.

* :mod:`repro.analysis.link` -- end-to-end link simulation (transmitter,
  channel, receiver) batched over packets; the workhorse behind every BER
  experiment.
* :mod:`repro.analysis.ber_stats` -- bit-error-rate measurements with
  confidence intervals and hint-binned statistics.
* :mod:`repro.analysis.sweep` -- the sweep subsystem: declarative
  :class:`~repro.analysis.sweep.SweepSpec` grids with per-point seed
  derivation, a :class:`~repro.analysis.sweep.SweepExecutor` with serial
  and process backends, JSON row emission, and the legacy
  :func:`~repro.analysis.sweep.sweep` / :func:`~repro.analysis.sweep.cross_sweep`
  helpers.
* :mod:`repro.analysis.reporting` -- plain-text table formatting used by the
  benchmark harness to print the paper's tables and figure series.
"""

from repro.analysis.ber_stats import BerMeasurement, bin_errors_by_hint, wilson_interval
from repro.analysis.link import LinkRunResult, LinkSimulator
from repro.analysis.reporting import Table, format_percentage, format_ratio
from repro.analysis.sweep import (
    SweepError,
    SweepExecutor,
    SweepPoint,
    SweepSpec,
    cross_sweep,
    executor_from_env,
    rows_to_json,
    run_link_ber_point,
    sweep,
)

__all__ = [
    "BerMeasurement",
    "LinkRunResult",
    "LinkSimulator",
    "SweepError",
    "SweepExecutor",
    "SweepPoint",
    "SweepSpec",
    "Table",
    "bin_errors_by_hint",
    "cross_sweep",
    "executor_from_env",
    "format_percentage",
    "format_ratio",
    "rows_to_json",
    "run_link_ber_point",
    "sweep",
    "wilson_interval",
]
