"""Analysis utilities shared by the experiments and benchmarks.

* :mod:`repro.analysis.link` -- end-to-end link simulation (transmitter,
  channel, receiver) batched over packets; the workhorse behind every BER
  experiment.
* :mod:`repro.analysis.ber_stats` -- bit-error-rate measurements with
  confidence intervals and hint-binned statistics.
* :mod:`repro.analysis.sweep` -- small helpers for parameter sweeps.
* :mod:`repro.analysis.reporting` -- plain-text table formatting used by the
  benchmark harness to print the paper's tables and figure series.
"""

from repro.analysis.ber_stats import BerMeasurement, bin_errors_by_hint, wilson_interval
from repro.analysis.link import LinkRunResult, LinkSimulator
from repro.analysis.reporting import Table, format_percentage, format_ratio
from repro.analysis.sweep import sweep

__all__ = [
    "BerMeasurement",
    "LinkRunResult",
    "LinkSimulator",
    "Table",
    "bin_errors_by_hint",
    "format_percentage",
    "format_ratio",
    "sweep",
    "wilson_interval",
]
