"""Analysis utilities shared by the experiments and benchmarks.

* :mod:`repro.analysis.link` -- end-to-end link simulation (transmitter,
  channel, receiver) batched over packets; the workhorse behind every BER
  experiment.
* :mod:`repro.analysis.ber_stats` -- bit-error-rate measurements with
  confidence intervals and hint-binned statistics.
* :mod:`repro.analysis.sweep` -- the sweep subsystem: declarative
  :class:`~repro.analysis.sweep.SweepSpec` grids with per-point seed
  derivation, a :class:`~repro.analysis.sweep.SweepExecutor` with serial
  and process backends, JSON row emission, and the legacy
  :func:`~repro.analysis.sweep.sweep` / :func:`~repro.analysis.sweep.cross_sweep`
  helpers.
* :mod:`repro.analysis.adaptive` -- adaptive measurement on top of the
  sweep subsystem: sequential early stopping per point and a
  budget-reallocating scheduler.
* :mod:`repro.analysis.scenario` -- the declarative top layer: a frozen,
  hashable :class:`Scenario` describing the link configuration and the
  unified :class:`Experiment` front door over fixed/adaptive depth,
  serial/process execution and store-backed resume.
* :mod:`repro.analysis.store` -- content-addressed persistence for
  characterisation batches (:class:`ResultStore`): a warm store serves
  previously simulated batches instantly, and a tighter re-run simulates
  only the missing batch indices.
* :mod:`repro.analysis.reporting` -- plain-text table formatting used by the
  benchmark harness to print the paper's tables and figure series.

The front door
--------------
Describe *what is simulated* as a :class:`Scenario`, the operating-point
grid as a :class:`SweepSpec`, and run both through an
:class:`Experiment`::

    from repro.analysis import Experiment, Scenario, StopRule, SweepSpec

    experiment = Experiment(
        scenario=Scenario(decoder="bcjr", packet_bits=1704),
        sweep=SweepSpec({"rate_mbps": [12, 24],
                         "snr_db": [5.0, 6.0, 7.0, 8.0]}, seed=23),
        stop=StopRule(rel_half_width=0.25, min_errors=50, max_packets=64),
    )
    rows = experiment.run()   # executor_from_env(): REPRO_SWEEP_WORKERS=N shards

    # attach store=ResultStore("bercurves/") and re-running with a tighter
    # StopRule simulates only the batches the first run never needed.

``stop=None`` selects fixed depth (``num_packets`` per point, the mode
wall-clock-pinned perf benchmarks need); the legacy ``sweep`` /
``cross_sweep`` / params-dict ``run_link_ber_point`` entry points remain
as deprecated shims over this path.

For serve-curves-on-demand deployments, :mod:`repro.service` runs this
stack as a long-lived daemon: a broker dedupes requests against the
store and each other, a persistent worker fleet simulates only the
misses (via the batch-granular :meth:`Experiment.trajectory` hook), and
rows stream back as points settle.

Sweeps and adaptive characterisation
------------------------------------
A BER curve is a grid of operating points, and the repository offers two
depths of automation for measuring one:

**Fixed depth** — declare the grid as a :class:`SweepSpec` and run a
picklable point-runner over it with a :class:`SweepExecutor`.  Every point
simulates the same packet count; rows are bit-for-bit independent of the
backend (serial or process), worker count and chunk size, because each
point's random stream is derived from the spec's master seed keyed by the
point's axis coordinates.  ``REPRO_SWEEP_WORKERS=N`` shards any
executor-driven sweep across ``N`` processes without changing a bit of the
output.  This is the mode for wall-clock-pinned perf benchmarks, where the
work per point must cost the same everywhere.

**Adaptive depth** — wrap the measurement in the
:mod:`~repro.analysis.adaptive` subsystem.  Points run in fixed-size,
chunk-invariant batches (batch ``k`` of a point is seeded from child ``k``
of the point's ``SeedSequence``), accumulating a :class:`BerMeasurement`
until a :class:`StopRule` fires: the Wilson interval's relative half-width
meets a target, an error-count target is reached, a zero-error point's
upper bound drops below the resolution floor, or a traffic cap hits.  The
:class:`AdaptiveScheduler` runs a whole grid this way under a global
traffic budget, re-ranking points by interval looseness each round so the
budget freed by early-stopped (low-SNR) points is reallocated to the
starving high-SNR tail.  Because batch contents are pre-determined by
their (point, batch index) key and stopping decisions happen at round
barriers over deterministic counts, serial and multi-worker process runs
produce bit-for-bit identical rows — including packets spent and stop
reasons.
"""

from repro.analysis.adaptive import (
    AdaptivePointState,
    AdaptiveScheduler,
    AdaptiveTrajectory,
    MeasurementBatch,
    StopRule,
    batch_seed_sequence,
    batch_store_key,
    run_link_ber_batch,
    run_point_adaptive,
)
from repro.analysis.ber_stats import BerMeasurement, bin_errors_by_hint, wilson_interval
from repro.analysis.link import LinkRunResult, LinkSimulator
from repro.analysis.reporting import Table, format_percentage, format_ratio
from repro.analysis.scenario import Experiment, Scenario, run_scenario_point
from repro.analysis.store import ResultStore, StoreError, StoreView
from repro.analysis.sweep import (
    SweepError,
    SweepExecutor,
    SweepPoint,
    SweepSpec,
    cross_sweep,
    executor_from_env,
    link_simulator_for_params,
    rows_to_json,
    run_link_ber_point,
    sweep,
)

__all__ = [
    "AdaptivePointState",
    "AdaptiveScheduler",
    "AdaptiveTrajectory",
    "BerMeasurement",
    "Experiment",
    "LinkRunResult",
    "LinkSimulator",
    "MeasurementBatch",
    "ResultStore",
    "Scenario",
    "StopRule",
    "StoreError",
    "StoreView",
    "SweepError",
    "SweepExecutor",
    "SweepPoint",
    "SweepSpec",
    "Table",
    "batch_seed_sequence",
    "batch_store_key",
    "bin_errors_by_hint",
    "cross_sweep",
    "executor_from_env",
    "format_percentage",
    "format_ratio",
    "link_simulator_for_params",
    "rows_to_json",
    "run_link_ber_batch",
    "run_link_ber_point",
    "run_point_adaptive",
    "run_scenario_point",
    "sweep",
    "wilson_interval",
]
