"""Plug-n-play module registry: the AWB analogue.

The paper leans on AWB to let users assemble a wireless pipeline by picking,
for each *role* in the pipeline (decoder, demapper, channel, ...), one of
several registered *implementations*.  :class:`ModuleRegistry` provides the
same service: implementations register themselves under ``(role, name)`` and
a configuration -- a plain ``{role: implementation_name}`` mapping -- selects
which one to build.  The PHY pipelines in :mod:`repro.phy.pipelines` register
their alternatives (for example ``decoder`` -> ``viterbi`` / ``sova`` /
``bcjr``), so swapping a decoder is a one-word configuration change rather
than a source edit, exactly the workflow the paper advertises.
"""

from repro.core.errors import UnknownImplementationError


class ModuleRegistry:
    """Maps ``(role, implementation name)`` to a factory callable."""

    def __init__(self):
        self._factories = {}

    def register(self, role, name):
        """Decorator registering ``factory`` as implementation ``name`` of ``role``.

        Registering the same ``(role, name)`` twice replaces the factory,
        which keeps repeated imports (and interactive use) harmless.
        """

        def decorator(factory):
            self._factories[(role, name)] = factory
            return factory

        return decorator

    def add(self, role, name, factory):
        """Non-decorator form of :meth:`register`."""
        self._factories[(role, name)] = factory

    def roles(self):
        """Return the sorted list of known roles."""
        return sorted({role for role, _ in self._factories})

    def implementations(self, role):
        """Return the sorted implementation names registered for ``role``."""
        names = sorted(name for r, name in self._factories if r == role)
        if not names:
            raise UnknownImplementationError("no implementations for role %r" % role)
        return names

    def has(self, role, name):
        """Return ``True`` when ``(role, name)`` is registered."""
        return (role, name) in self._factories

    def create(self, role, name, **kwargs):
        """Instantiate implementation ``name`` of ``role``.

        ``kwargs`` are forwarded to the factory, so implementations can take
        configuration (rate parameters, block lengths, ...).
        """
        try:
            factory = self._factories[(role, name)]
        except KeyError:
            known = sorted(n for r, n in self._factories if r == role)
            raise UnknownImplementationError(
                "unknown implementation %r for role %r (known: %s)"
                % (name, role, ", ".join(known) if known else "none")
            ) from None
        return factory(**kwargs)

    def build_configuration(self, configuration, **shared_kwargs):
        """Instantiate every role in ``configuration``.

        Parameters
        ----------
        configuration:
            Mapping of role name to implementation name.
        shared_kwargs:
            Keyword arguments passed to every factory (for example the PHY
            rate parameters shared by the whole pipeline).

        Returns
        -------
        dict
            Mapping of role name to the instantiated object.
        """
        return {
            role: self.create(role, name, **shared_kwargs)
            for role, name in configuration.items()
        }


#: Process-wide registry used by the PHY pipelines and the examples.  Library
#: users who want isolation can instantiate their own :class:`ModuleRegistry`.
global_registry = ModuleRegistry()
