"""Latency-insensitive modules.

An :class:`LIModule` is the unit of composition in WiLIS.  A module declares
named input and output ports; the :class:`~repro.core.network.Network` binds
each port to a :class:`~repro.core.fifo.Fifo` when modules are connected.
The scheduler repeatedly asks every module whether it *can fire* and, when it
can, calls :meth:`LIModule.fire` exactly once.  The default firing rule --
every connected input has data and every connected output has space -- gives
the latency-insensitive behaviour described in the paper: a module never
depends on when its neighbours produce or consume data, only on whether they
eventually do.

Three convenience subclasses cover the common shapes:

* :class:`SourceModule` produces tokens from a Python iterable (no inputs).
* :class:`SinkModule` collects tokens into a list (no outputs).
* :class:`FunctionModule` wraps a pure function ``token -> token`` as a
  single-input single-output module, which is how the DSP kernels in
  :mod:`repro.phy` are lifted into the framework without duplicating any
  signal-processing code.
"""

import time

from repro.core.clocks import DEFAULT_CLOCK
from repro.core.errors import ConfigurationError


class LIModule:
    """Base class for latency-insensitive modules.

    Parameters
    ----------
    name:
        Unique (within a network) module name.
    clock:
        The :class:`~repro.core.clocks.ClockDomain` this module runs in.
        Connected modules in different domains get a synchronising FIFO
        inserted automatically.
    input_ports, output_ports:
        Names of the ports this module exposes.  Subclasses usually pass
        these from their constructor.
    """

    def __init__(self, name, clock=None, input_ports=(), output_ports=()):
        self.name = name
        self.clock = clock if clock is not None else DEFAULT_CLOCK
        self.inputs = {port: None for port in input_ports}
        self.outputs = {port: None for port in output_ports}
        self.fire_count = 0
        self.stall_count = 0
        #: Wall-clock seconds spent inside :meth:`fire`, accumulated by
        #: :meth:`step`.  The co-simulation driver uses this to attribute
        #: host time to the hardware and software partitions (the paper's
        #: "which side is the bottleneck" analysis).
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Port binding (called by Network.connect)
    # ------------------------------------------------------------------ #
    def bind_input(self, port, fifo):
        """Attach ``fifo`` to the named input port."""
        if port not in self.inputs:
            raise ConfigurationError(
                "module %r has no input port %r (has %r)"
                % (self.name, port, sorted(self.inputs))
            )
        if self.inputs[port] is not None:
            raise ConfigurationError(
                "input port %s.%s is already connected" % (self.name, port)
            )
        self.inputs[port] = fifo

    def bind_output(self, port, fifo):
        """Attach ``fifo`` to the named output port."""
        if port not in self.outputs:
            raise ConfigurationError(
                "module %r has no output port %r (has %r)"
                % (self.name, port, sorted(self.outputs))
            )
        if self.outputs[port] is not None:
            raise ConfigurationError(
                "output port %s.%s is already connected" % (self.name, port)
            )
        self.outputs[port] = fifo

    def input_fifo(self, port):
        """Return the FIFO bound to ``port``; raise if unconnected."""
        fifo = self.inputs.get(port)
        if fifo is None:
            raise ConfigurationError(
                "input port %s.%s is not connected" % (self.name, port)
            )
        return fifo

    def output_fifo(self, port):
        """Return the FIFO bound to ``port``; raise if unconnected."""
        fifo = self.outputs.get(port)
        if fifo is None:
            raise ConfigurationError(
                "output port %s.%s is not connected" % (self.name, port)
            )
        return fifo

    # ------------------------------------------------------------------ #
    # Firing rule
    # ------------------------------------------------------------------ #
    def can_fire(self):
        """Default guard: all connected inputs have data, all outputs have space.

        Ports that were declared but never connected are ignored, so optional
        ports do not block the module.
        """
        for fifo in self.inputs.values():
            if fifo is not None and fifo.is_empty():
                return False
        for fifo in self.outputs.values():
            if fifo is not None and fifo.is_full():
                return False
        return True

    def fire(self):
        """Perform one firing.  Subclasses must override."""
        raise NotImplementedError

    def step(self):
        """Fire once if possible; return ``True`` when the module fired."""
        if self.can_fire():
            started = time.perf_counter()
            self.fire()
            self.busy_seconds += time.perf_counter() - started
            self.fire_count += 1
            return True
        self.stall_count += 1
        return False

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def is_quiescent(self):
        """Return ``True`` when this module has no pending work.

        The default considers a module quiescent when it cannot fire; sources
        override this to report whether they have exhausted their input.
        """
        return not self.can_fire()

    def __repr__(self):
        return "%s(name=%r, clock=%r)" % (
            type(self).__name__,
            self.name,
            self.clock.name,
        )


class SourceModule(LIModule):
    """Produces tokens from an iterable on its single ``out`` port.

    Parameters
    ----------
    name:
        Module name.
    tokens:
        Any iterable of tokens to emit, one per firing.  The source is
        exhausted when the iterable is.
    """

    def __init__(self, name, tokens=(), clock=None):
        super().__init__(name, clock=clock, output_ports=("out",))
        self._pending = list(tokens)
        self.emitted = 0

    def feed(self, tokens):
        """Append more tokens to be emitted (callable between runs)."""
        self._pending.extend(tokens)

    @property
    def pending(self):
        """Number of tokens not yet emitted."""
        return len(self._pending)

    def can_fire(self):
        if not self._pending:
            return False
        return super().can_fire()

    def fire(self):
        token = self._pending.pop(0)
        self.output_fifo("out").enq(token)
        self.emitted += 1

    def is_quiescent(self):
        return not self._pending


class SinkModule(LIModule):
    """Collects every token arriving on its single ``in`` port."""

    def __init__(self, name, clock=None):
        super().__init__(name, clock=clock, input_ports=("in",))
        self.collected = []

    def fire(self):
        self.collected.append(self.input_fifo("in").deq())

    def drain(self):
        """Return all collected tokens and reset the collection."""
        tokens = self.collected
        self.collected = []
        return tokens

    def is_quiescent(self):
        fifo = self.inputs.get("in")
        return fifo is None or fifo.is_empty()


class FunctionModule(LIModule):
    """Wraps a pure function as a one-input one-output module.

    This is how the numpy DSP kernels in :mod:`repro.phy` are lifted into the
    latency-insensitive framework: the same function used by the fast
    "direct" path is applied once per token here, so the framework pipeline
    and the direct pipeline cannot diverge.

    Parameters
    ----------
    name:
        Module name.
    func:
        Callable applied to each input token; its return value is enqueued
        on the output.  Returning ``None`` emits nothing for that token,
        which lets a wrapped function consume several tokens before
        producing one (for example a block deinterleaver).
    """

    def __init__(self, name, func, clock=None):
        super().__init__(
            name, clock=clock, input_ports=("in",), output_ports=("out",)
        )
        self.func = func

    def fire(self):
        token = self.input_fifo("in").deq()
        result = self.func(token)
        if result is not None:
            self.output_fifo("out").enq(result)
