"""The WiLIS framework: latency-insensitive co-simulation of wireless systems.

This subpackage is the Python analogue of the infrastructure the paper builds
on top of Airblue/LEAP/AWB:

* :mod:`repro.core.fifo` -- bounded FIFO channels, the only way modules
  communicate (latency-insensitive links).
* :mod:`repro.core.module` -- the :class:`~repro.core.module.LIModule` base
  class; a module fires whenever its inputs are available and its outputs
  have space, making the whole pipeline insensitive to the latency of any
  individual block.
* :mod:`repro.core.clocks` -- named clock domains; the network inserts
  clock-domain-crossing FIFOs automatically when connected modules declare
  different clocks (the paper's "automatic multi-clock support").
* :mod:`repro.core.network` -- the module graph plus connection logic.
* :mod:`repro.core.scheduler` -- multi-clock event scheduler and an untimed
  dataflow scheduler.
* :mod:`repro.core.registry` -- plug-n-play module registry (AWB analogue).
* :mod:`repro.core.platform` -- virtual platform with a host link and
  scratchpad memories (LEAP analogue), including the hardware/software
  partition used for co-simulation.
* :mod:`repro.core.cosim` -- the co-simulation driver that runs a pipeline,
  accounts for simulated bits and host-link traffic and reports throughput.
"""

from repro.core.clocks import ClockDomain
from repro.core.cosim import CoSimulation, CoSimulationReport
from repro.core.errors import (
    ConfigurationError,
    FifoEmptyError,
    FifoFullError,
    UnknownImplementationError,
    WilisError,
)
from repro.core.fifo import Fifo, SyncFifo
from repro.core.module import FunctionModule, LIModule, SinkModule, SourceModule
from repro.core.network import Connection, Network
from repro.core.platform import HostLink, Partition, Scratchpad, VirtualPlatform
from repro.core.registry import ModuleRegistry, global_registry
from repro.core.scheduler import DataflowScheduler, MultiClockScheduler, SchedulerStats

__all__ = [
    "ClockDomain",
    "CoSimulation",
    "CoSimulationReport",
    "ConfigurationError",
    "Connection",
    "DataflowScheduler",
    "Fifo",
    "FifoEmptyError",
    "FifoFullError",
    "FunctionModule",
    "HostLink",
    "LIModule",
    "ModuleRegistry",
    "MultiClockScheduler",
    "Network",
    "Partition",
    "Scratchpad",
    "SchedulerStats",
    "SinkModule",
    "SourceModule",
    "SyncFifo",
    "UnknownImplementationError",
    "VirtualPlatform",
    "WilisError",
    "global_registry",
]
