"""Schedulers for latency-insensitive networks.

Two schedulers are provided, mirroring the two ways the paper runs its
models:

* :class:`DataflowScheduler` is untimed: it simply keeps firing any module
  that can fire until the network quiesces.  This is the decoupled,
  "run as fast as data allows" execution that gives WiLIS its order-of-
  magnitude throughput advantage over lock-step (SCE-MI style) emulation.
  It also offers a ``lockstep`` mode that emulates the SCE-MI behaviour --
  one firing per module per global step -- which the ablation benchmark uses
  to reproduce the paper's comparison.

* :class:`MultiClockScheduler` is timed: each clock domain advances at its
  own frequency and a module may fire at most once per edge of its domain's
  clock.  This is used to estimate pipeline throughput in simulated
  microseconds (Figure 2 and the latency studies).
"""

from repro.core.errors import SchedulerDeadlockError


class SchedulerStats:
    """Aggregate statistics from a scheduler run."""

    def __init__(self):
        self.total_firings = 0
        self.steps = 0
        self.cycles_per_domain = {}
        self.simulated_time_us = 0.0
        self.firings_per_module = {}

    def record_firing(self, module):
        self.total_firings += 1
        self.firings_per_module[module.name] = (
            self.firings_per_module.get(module.name, 0) + 1
        )

    def __repr__(self):
        return (
            "SchedulerStats(firings=%d, steps=%d, simulated_time_us=%.3f)"
            % (self.total_firings, self.steps, self.simulated_time_us)
        )


class DataflowScheduler:
    """Untimed scheduler: fire whatever can fire, until nothing can.

    Parameters
    ----------
    network:
        The :class:`~repro.core.network.Network` to execute.
    lockstep:
        When ``True`` the scheduler emulates a lock-step co-emulation
        interface: in each global step every module is offered at most one
        firing and the step only completes once all modules have been
        polled.  When ``False`` (the default, WiLIS behaviour) a module may
        fire repeatedly within one pass as long as data keeps flowing.
    """

    def __init__(self, network, lockstep=False):
        self.network = network
        self.lockstep = lockstep
        self.stats = SchedulerStats()

    def run(self, max_steps=1_000_000):
        """Run until quiescent or ``max_steps`` scheduler passes elapse.

        Returns the :class:`SchedulerStats` for the run.  Raises
        :class:`~repro.core.errors.SchedulerDeadlockError` if the network
        stops making progress while sources still hold data.
        """
        modules = list(self.network.modules.values())
        for _ in range(max_steps):
            fired_any = False
            for module in modules:
                if self.lockstep:
                    if module.step():
                        self.stats.record_firing(module)
                        fired_any = True
                else:
                    # Drain as much as this module can do right now.  This is
                    # the decoupled behaviour: downstream modules will see a
                    # burst of tokens and process them on the same pass.
                    while module.step():
                        self.stats.record_firing(module)
                        fired_any = True
            self.stats.steps += 1
            if not fired_any:
                self._check_for_deadlock(modules)
                return self.stats
        return self.stats

    def _check_for_deadlock(self, modules):
        waiting = [
            module.name
            for module in modules
            if not module.is_quiescent() and not module.can_fire()
        ]
        if waiting:
            raise SchedulerDeadlockError(
                "network quiesced with modules still waiting: %s"
                % ", ".join(sorted(waiting))
            )


class MultiClockScheduler:
    """Timed scheduler honouring per-module clock domains.

    Time advances from clock edge to clock edge.  At each edge of a domain,
    every module in that domain is offered a single firing.  The resulting
    ``simulated_time_us`` lets callers convert token counts into a modelled
    hardware throughput, which is how the Figure 2 reproduction estimates
    what the pipeline would sustain at the paper's 35/60 MHz clocks.
    """

    def __init__(self, network):
        self.network = network
        self.stats = SchedulerStats()

    def run(self, max_edges=1_000_000, until=None):
        """Run until quiescent, ``until()`` returns ``True`` or the edge cap.

        Parameters
        ----------
        max_edges:
            Upper bound on the number of clock edges processed (across all
            domains) as a safety net against livelock.
        until:
            Optional zero-argument callable evaluated after every edge; the
            run stops when it returns ``True``.
        """
        domains = sorted(
            self.network.clock_domains(), key=lambda d: (d.name, d.frequency_mhz)
        )
        modules_by_domain = {
            domain: [
                m for m in self.network.modules.values() if m.clock == domain
            ]
            for domain in domains
        }
        # Next edge time for each domain, in microseconds.
        next_edge = {domain: domain.period_us for domain in domains}
        idle_edges = 0
        idle_limit = 4 * max(1, len(domains))

        for _ in range(max_edges):
            domain = min(next_edge, key=lambda d: (next_edge[d], d.name))
            now = next_edge[domain]
            next_edge[domain] = now + domain.period_us
            self.stats.simulated_time_us = now
            self.stats.cycles_per_domain[domain.name] = (
                self.stats.cycles_per_domain.get(domain.name, 0) + 1
            )

            fired_any = False
            for module in modules_by_domain[domain]:
                if module.step():
                    self.stats.record_firing(module)
                    fired_any = True
            self.stats.steps += 1

            if until is not None and until():
                return self.stats
            if fired_any:
                idle_edges = 0
            else:
                idle_edges += 1
                if idle_edges >= idle_limit and self._quiescent():
                    return self.stats
        return self.stats

    def _quiescent(self):
        return all(
            module.is_quiescent() or not module.can_fire()
            for module in self.network.modules.values()
        ) and all(not module.can_fire() for module in self.network.modules.values())
