"""Virtual platform: the LEAP analogue, including the FPGA-host link model.

The paper runs the baseband on a Virtex-5 ACP module attached to a 1066 MHz
front-side bus, giving roughly 700 MB/s of FIFO bandwidth to the host, and
keeps the channel model in software on a quad-core Xeon.  LEAP hides the
board-specific details behind uniform device interfaces.  Here the
:class:`VirtualPlatform` plays that part: modules are assigned to either the
*hardware* or the *software* partition, every token that flows between
partitions is charged against a :class:`HostLink` bandwidth model, and
scratchpad memories provide the uniform memory interface.

Nothing in the user-visible module code mentions the platform -- modules are
written against FIFOs exactly as before -- which reproduces the paper's
virtualization claim that a WiLIS model runs unmodified on any supported
platform.
"""

import numpy as np

from repro.core.errors import ConfigurationError


class Partition:
    """Names of the two co-simulation partitions."""

    HARDWARE = "hardware"
    SOFTWARE = "software"

    ALL = (HARDWARE, SOFTWARE)


class HostLink:
    """Bandwidth/latency model of the FPGA-to-host communication channel.

    Parameters
    ----------
    bandwidth_mbytes_per_s:
        Sustained bandwidth of the link.  The paper's FSB link provides in
        excess of 700 MB/s.
    latency_us:
        Fixed per-transfer latency (one direction).
    name:
        Link name for reports.
    """

    def __init__(self, bandwidth_mbytes_per_s=700.0, latency_us=1.0, name="fsb"):
        if bandwidth_mbytes_per_s <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        self.bandwidth_mbytes_per_s = float(bandwidth_mbytes_per_s)
        self.latency_us = float(latency_us)
        self.name = name
        self.bytes_to_hardware = 0
        self.bytes_to_software = 0
        self.transfers = 0

    @staticmethod
    def token_size_bytes(token):
        """Estimate the wire size of a token.

        Numpy arrays are charged their buffer size; bit arrays are packed to
        one bit per element (matching the paper's packed transfers); other
        tokens are charged a conservative 8 bytes per scalar element when
        sized, or 8 bytes flat otherwise.
        """
        if isinstance(token, np.ndarray):
            if token.dtype == np.bool_ or (
                token.dtype.kind in "iu" and token.size and set(np.unique(token)) <= {0, 1}
            ):
                return max(1, token.size // 8)
            return int(token.nbytes)
        if isinstance(token, (bytes, bytearray)):
            return len(token)
        if hasattr(token, "__len__"):
            return 8 * len(token)
        return 8

    def transfer(self, nbytes, to_hardware):
        """Account a transfer of ``nbytes`` and return its duration in µs."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if to_hardware:
            self.bytes_to_hardware += nbytes
        else:
            self.bytes_to_software += nbytes
        self.transfers += 1
        return self.latency_us + nbytes / self.bandwidth_mbytes_per_s

    @property
    def total_bytes(self):
        """Total traffic in both directions."""
        return self.bytes_to_hardware + self.bytes_to_software

    def utilization(self, elapsed_s):
        """Fraction of the link bandwidth used over ``elapsed_s`` seconds."""
        if elapsed_s <= 0:
            return 0.0
        used_mbytes_per_s = self.total_bytes / 1e6 / elapsed_s
        return used_mbytes_per_s / self.bandwidth_mbytes_per_s

    def reset(self):
        """Zero the traffic counters."""
        self.bytes_to_hardware = 0
        self.bytes_to_software = 0
        self.transfers = 0


class Scratchpad:
    """A uniform word-addressed memory, the LEAP scratchpad analogue.

    Parameters
    ----------
    name:
        Memory name.
    size_words:
        Number of addressable words; reads of unwritten words return the
        fill value.
    fill:
        Value returned for unwritten addresses.
    """

    def __init__(self, name, size_words, fill=0):
        if size_words <= 0:
            raise ConfigurationError("scratchpad size must be positive")
        self.name = name
        self.size_words = int(size_words)
        self.fill = fill
        self._store = {}
        self.reads = 0
        self.writes = 0

    def _check(self, address):
        if not 0 <= address < self.size_words:
            raise IndexError(
                "address %d out of range for scratchpad %r (size %d)"
                % (address, self.name, self.size_words)
            )

    def read(self, address):
        """Return the word at ``address``."""
        self._check(address)
        self.reads += 1
        return self._store.get(address, self.fill)

    def write(self, address, value):
        """Write ``value`` at ``address``."""
        self._check(address)
        self.writes += 1
        self._store[address] = value

    def read_block(self, address, length):
        """Return ``length`` consecutive words starting at ``address``."""
        return [self.read(address + offset) for offset in range(length)]

    def write_block(self, address, values):
        """Write consecutive words starting at ``address``."""
        for offset, value in enumerate(values):
            self.write(address + offset, value)

    def clear(self):
        """Erase all contents and reset the access counters."""
        self._store.clear()
        self.reads = 0
        self.writes = 0


class VirtualPlatform:
    """A named execution platform with partitions, a host link and memories.

    Parameters
    ----------
    name:
        Platform name (for example ``"acp-virtex5"`` or ``"simulation"``).
    fpga_clock_mhz:
        Default clock available to the hardware partition; used only for
        reporting.
    host_link:
        The :class:`HostLink` connecting the partitions; a default 700 MB/s
        link is created when omitted.
    """

    def __init__(self, name="acp-virtex5", fpga_clock_mhz=35.0, host_link=None):
        self.name = name
        self.fpga_clock_mhz = float(fpga_clock_mhz)
        self.host_link = host_link if host_link is not None else HostLink()
        self._partitions = {Partition.HARDWARE: [], Partition.SOFTWARE: []}
        self._assignment = {}
        self._scratchpads = {}

    # ------------------------------------------------------------------ #
    # Partition management
    # ------------------------------------------------------------------ #
    def assign(self, module, partition):
        """Place ``module`` in a partition (``"hardware"`` or ``"software"``)."""
        if partition not in Partition.ALL:
            raise ConfigurationError(
                "unknown partition %r (expected one of %r)" % (partition, Partition.ALL)
            )
        if module.name in self._assignment:
            raise ConfigurationError(
                "module %r is already assigned to partition %r"
                % (module.name, self._assignment[module.name])
            )
        self._partitions[partition].append(module)
        self._assignment[module.name] = partition

    def assign_all(self, modules, partition):
        """Assign several modules to the same partition."""
        for module in modules:
            self.assign(module, partition)

    def partition_of(self, module):
        """Return the partition name a module was assigned to."""
        try:
            return self._assignment[module.name]
        except KeyError:
            raise ConfigurationError(
                "module %r has not been assigned to a partition" % module.name
            ) from None

    def modules_in(self, partition):
        """Return the modules assigned to ``partition``."""
        if partition not in Partition.ALL:
            raise ConfigurationError("unknown partition %r" % partition)
        return list(self._partitions[partition])

    def cross_partition_connections(self, network):
        """Return the network connections that cross the hardware/software boundary."""
        crossings = []
        for connection in network.connections:
            producer_part = self._assignment.get(connection.producer.name)
            consumer_part = self._assignment.get(connection.consumer.name)
            if (
                producer_part is not None
                and consumer_part is not None
                and producer_part != consumer_part
            ):
                crossings.append(connection)
        return crossings

    # ------------------------------------------------------------------ #
    # Memory services
    # ------------------------------------------------------------------ #
    def scratchpad(self, name, size_words=4096):
        """Return (creating on first use) the scratchpad called ``name``."""
        if name not in self._scratchpads:
            self._scratchpads[name] = Scratchpad(name, size_words)
        return self._scratchpads[name]

    def __repr__(self):
        return "VirtualPlatform(name=%r, hw_modules=%d, sw_modules=%d)" % (
            self.name,
            len(self._partitions[Partition.HARDWARE]),
            len(self._partitions[Partition.SOFTWARE]),
        )
