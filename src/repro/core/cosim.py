"""Co-simulation driver: run a pipeline, account bits, link traffic and time.

This is the analogue of the paper's Figure 2 measurement harness.  A
:class:`CoSimulation` takes a :class:`~repro.core.network.Network`, a
:class:`~repro.core.platform.VirtualPlatform` describing which modules live
in the hardware partition and which in software, and a scheduler.  Running it
produces a :class:`CoSimulationReport` with:

* the number of payload bits pushed through the pipeline,
* wall-clock time and the resulting *simulation speed* in bits/s,
* the modelled hardware time (when the multi-clock scheduler is used) and
  the corresponding modelled throughput,
* host-link traffic and utilisation (the paper observes ~55 MB/s of the
  available 700 MB/s and concludes that the software channel, not the link,
  is the bottleneck), and
* per-partition firing counts, from which the report derives which partition
  bounded the run.
"""

import time

from repro.core.errors import ConfigurationError
from repro.core.platform import HostLink, Partition, VirtualPlatform
from repro.core.scheduler import DataflowScheduler


class CoSimulationReport:
    """Results of one co-simulation run."""

    def __init__(
        self,
        payload_bits,
        wall_seconds,
        simulated_time_us,
        link_bytes,
        link_utilization,
        hardware_firings,
        software_firings,
        scheduler_stats,
        hardware_busy_seconds=0.0,
        software_busy_seconds=0.0,
    ):
        self.payload_bits = payload_bits
        self.wall_seconds = wall_seconds
        self.simulated_time_us = simulated_time_us
        self.link_bytes = link_bytes
        self.link_utilization = link_utilization
        self.hardware_firings = hardware_firings
        self.software_firings = software_firings
        self.scheduler_stats = scheduler_stats
        self.hardware_busy_seconds = hardware_busy_seconds
        self.software_busy_seconds = software_busy_seconds

    @property
    def simulation_speed_bps(self):
        """Payload bits processed per wall-clock second (the Figure 2 metric)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.payload_bits / self.wall_seconds

    @property
    def modelled_throughput_mbps(self):
        """Throughput implied by the modelled hardware clocks, in Mb/s.

        Only meaningful when the run used the multi-clock scheduler; returns
        ``None`` when no simulated time was accumulated.
        """
        if self.simulated_time_us <= 0:
            return None
        return self.payload_bits / self.simulated_time_us

    def line_rate_ratio(self, line_rate_mbps):
        """Ratio of the simulation speed to a physical line rate in Mb/s."""
        return self.simulation_speed_bps / (line_rate_mbps * 1e6)

    @property
    def bottleneck_partition(self):
        """Partition whose modules consumed the most host compute time.

        The paper's Figure 2 analysis attributes its bottleneck to the
        software channel on the same basis (the FPGA and link were not
        saturated while the host's noise generation was).
        """
        if self.software_busy_seconds >= self.hardware_busy_seconds:
            return Partition.SOFTWARE
        return Partition.HARDWARE

    def projected_speed_bps(self, hardware_seconds, link_bandwidth_mbytes_per_s=700.0):
        """Co-simulation speed projected onto the paper's platform.

        In the real WiLIS the hardware partition runs on the FPGA, so the
        time it contributes is its *modelled* hardware time rather than the
        host seconds this Python reproduction spends emulating it.  Given
        that modelled time (from :mod:`repro.hwmodel.throughput`) this
        property combines it with the measured software-partition time and
        the link-transfer time; the co-simulation can go no faster than its
        slowest contributor, which is how the paper reasons about its 32.8
        to 41.3 percent of line rate.
        """
        link_seconds = self.link_bytes / (link_bandwidth_mbytes_per_s * 1e6)
        limiting = max(hardware_seconds, self.software_busy_seconds, link_seconds)
        if limiting <= 0:
            return float("inf")
        return self.payload_bits / limiting

    def __repr__(self):
        return "CoSimulationReport(bits=%d, speed=%.3g bps, link_bytes=%d)" % (
            self.payload_bits,
            self.simulation_speed_bps,
            self.link_bytes,
        )


class CoSimulation:
    """Drives a network under a platform and produces a report.

    Parameters
    ----------
    network:
        The module graph to execute.
    platform:
        The :class:`~repro.core.platform.VirtualPlatform` with modules
        already assigned to partitions.  A default platform (everything in
        the hardware partition) is created when omitted.
    scheduler:
        Scheduler instance to use; defaults to a decoupled
        :class:`~repro.core.scheduler.DataflowScheduler` over the network.
    """

    def __init__(self, network, platform=None, scheduler=None):
        self.network = network
        if platform is None:
            platform = VirtualPlatform(name="simulation", host_link=HostLink())
            platform.assign_all(network.modules.values(), Partition.HARDWARE)
        self.platform = platform
        self.scheduler = (
            scheduler if scheduler is not None else DataflowScheduler(network)
        )
        self._validate_platform()
        self._attach_link_observers()

    def _validate_platform(self):
        for module in self.network.modules.values():
            try:
                self.platform.partition_of(module)
            except ConfigurationError:
                raise ConfigurationError(
                    "module %r is in the network but not assigned to a platform "
                    "partition" % module.name
                ) from None

    def _attach_link_observers(self):
        """Meter every FIFO that crosses the hardware/software boundary.

        Observers previously attached by another :class:`CoSimulation` are
        removed first so that building several drivers over the same network
        (for example one per scheduler variant) does not double-count
        traffic.
        """
        link = self.platform.host_link
        for connection in self.platform.cross_partition_connections(self.network):
            producer_partition = self.platform.partition_of(connection.producer)
            to_hardware = producer_partition == Partition.SOFTWARE

            def observer(token, _to_hardware=to_hardware):
                link.transfer(
                    HostLink.token_size_bytes(token), to_hardware=_to_hardware
                )

            observer.attached_by_cosim = True
            connection.fifo.observers = [
                existing
                for existing in connection.fifo.observers
                if not getattr(existing, "attached_by_cosim", False)
            ]
            connection.fifo.observers.append(observer)

    def _partition_firings(self, stats):
        hardware = 0
        software = 0
        for module in self.network.modules.values():
            firings = stats.firings_per_module.get(module.name, 0)
            if self.platform.partition_of(module) == Partition.HARDWARE:
                hardware += firings
            else:
                software += firings
        return hardware, software

    def _partition_busy_seconds(self):
        hardware = 0.0
        software = 0.0
        for module in self.network.modules.values():
            if self.platform.partition_of(module) == Partition.HARDWARE:
                hardware += module.busy_seconds
            else:
                software += module.busy_seconds
        return hardware, software

    def run(self, payload_bits, max_steps=1_000_000):
        """Execute the network until quiescent and return a report.

        Parameters
        ----------
        payload_bits:
            Number of payload bits the caller pushed through the pipeline
            (the driver cannot know this because tokens are opaque).
        max_steps:
            Forwarded to the scheduler.
        """
        link = self.platform.host_link
        start_bytes = link.total_bytes
        start = time.perf_counter()
        stats = self.scheduler.run(max_steps)
        wall = time.perf_counter() - start

        hardware_firings, software_firings = self._partition_firings(stats)
        hardware_busy, software_busy = self._partition_busy_seconds()
        return CoSimulationReport(
            payload_bits=payload_bits,
            wall_seconds=wall,
            simulated_time_us=stats.simulated_time_us,
            link_bytes=link.total_bytes - start_bytes,
            link_utilization=link.utilization(wall) if wall > 0 else 0.0,
            hardware_firings=hardware_firings,
            software_firings=software_firings,
            scheduler_stats=stats,
            hardware_busy_seconds=hardware_busy,
            software_busy_seconds=software_busy,
        )
