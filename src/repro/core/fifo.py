"""Bounded FIFO channels: the latency-insensitive links between modules.

In WiLIS every pair of communicating modules is connected by a small bounded
FIFO (the paper uses two-element FIFOs).  Modules never reach into each
other's state; they only enqueue onto their output FIFOs and dequeue from
their input FIFOs.  Because a module only fires when data is available and
space exists downstream, the composition tolerates arbitrary per-module
latency -- the property the paper calls *latency insensitivity*.

Tokens are arbitrary Python objects.  In the functional models built on top
of this framework a token is usually a block of data (a numpy array of bits,
soft values or OFDM symbols) rather than a single word, mirroring how the
paper batches transfers between the FPGA and the host for throughput.
"""

from collections import deque

from repro.core.errors import FifoEmptyError, FifoFullError


class Fifo:
    """A bounded first-in first-out channel between two modules.

    Parameters
    ----------
    capacity:
        Maximum number of tokens the FIFO can hold.  The paper's hardware
        FIFOs hold two elements; larger capacities model the deep, pipelined
        transfers used across the host link.
    name:
        Optional human-readable name used in error messages and statistics.
    """

    def __init__(self, capacity=2, name=""):
        if capacity < 1:
            raise ValueError("FIFO capacity must be at least 1, got %r" % (capacity,))
        self.capacity = capacity
        self.name = name or "fifo"
        self._queue = deque()
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.high_water = 0
        self.full_stalls = 0
        self.empty_stalls = 0
        #: Callables invoked with each enqueued token.  The co-simulation
        #: driver attaches an observer to FIFOs that cross the hardware /
        #: software partition so host-link traffic can be accounted without
        #: the modules knowing about the platform.
        self.observers = []

    def __len__(self):
        return len(self._queue)

    def __repr__(self):
        return "Fifo(name=%r, occupancy=%d/%d)" % (
            self.name,
            len(self._queue),
            self.capacity,
        )

    @property
    def occupancy(self):
        """Number of tokens currently held."""
        return len(self._queue)

    def is_empty(self):
        """Return ``True`` when the FIFO holds no tokens."""
        return not self._queue

    def is_full(self):
        """Return ``True`` when the FIFO has no free space."""
        return len(self._queue) >= self.capacity

    def can_enq(self):
        """Return ``True`` when a token can be enqueued without error."""
        return not self.is_full()

    def can_deq(self):
        """Return ``True`` when a token can be dequeued without error."""
        return not self.is_empty()

    def enq(self, token):
        """Append ``token``; raise :class:`FifoFullError` when full."""
        if self.is_full():
            self.full_stalls += 1
            raise FifoFullError("enqueue on full FIFO %r" % self.name)
        self._queue.append(token)
        self.total_enqueued += 1
        if len(self._queue) > self.high_water:
            self.high_water = len(self._queue)
        for observer in self.observers:
            observer(token)

    def deq(self):
        """Remove and return the oldest token; raise when empty."""
        if self.is_empty():
            self.empty_stalls += 1
            raise FifoEmptyError("dequeue on empty FIFO %r" % self.name)
        self.total_dequeued += 1
        return self._queue.popleft()

    def first(self):
        """Return (without removing) the oldest token; raise when empty."""
        if self.is_empty():
            self.empty_stalls += 1
            raise FifoEmptyError("peek on empty FIFO %r" % self.name)
        return self._queue[0]

    def clear(self):
        """Drop all tokens (used between simulation runs)."""
        self._queue.clear()

    def drain(self):
        """Remove and return all tokens as a list, oldest first."""
        tokens = list(self._queue)
        self.total_dequeued += len(tokens)
        self._queue.clear()
        return tokens


class SyncFifo(Fifo):
    """A FIFO that crosses a clock-domain boundary.

    Functionally identical to :class:`Fifo`; the distinct type records that
    the framework inserted a synchroniser between two modules in different
    clock domains (the paper's automatic multi-clock support) and carries the
    extra crossing latency that the latency model charges for it.

    Parameters
    ----------
    source_domain, sink_domain:
        The :class:`~repro.core.clocks.ClockDomain` objects on either side.
    sync_latency_cycles:
        Additional sink-domain cycles of latency charged for the crossing.
    """

    def __init__(
        self,
        source_domain,
        sink_domain,
        capacity=4,
        name="",
        sync_latency_cycles=2,
    ):
        super().__init__(capacity=capacity, name=name or "sync_fifo")
        self.source_domain = source_domain
        self.sink_domain = sink_domain
        self.sync_latency_cycles = sync_latency_cycles

    def __repr__(self):
        return "SyncFifo(name=%r, %s->%s, occupancy=%d/%d)" % (
            self.name,
            self.source_domain.name,
            self.sink_domain.name,
            len(self),
            self.capacity,
        )
