"""Exception hierarchy for the WiLIS framework.

Every error raised by :mod:`repro.core` derives from :class:`WilisError`, so
callers can catch framework problems without also catching unrelated Python
errors.
"""


class WilisError(Exception):
    """Base class for all errors raised by the WiLIS framework."""


class FifoFullError(WilisError):
    """Raised when enqueueing onto a FIFO that has no free space.

    A correctly written module checks :meth:`repro.core.fifo.Fifo.can_enq`
    (or relies on the default :meth:`LIModule.can_fire` guard) before
    enqueueing, so seeing this error indicates a module that is not
    latency-insensitive.
    """


class FifoEmptyError(WilisError):
    """Raised when dequeueing or peeking an empty FIFO."""


class ConfigurationError(WilisError):
    """Raised for invalid network or platform configuration.

    Examples: connecting a port twice, adding a module to two partitions,
    or requesting a clock domain with a non-positive frequency.
    """


class UnknownImplementationError(ConfigurationError):
    """Raised by the plug-n-play registry for an unknown role or implementation."""


class SchedulerDeadlockError(WilisError):
    """Raised when the scheduler detects that no module can ever fire again.

    Deadlock in a latency-insensitive network means a cycle of modules each
    waiting for FIFO space or data that can never arrive; the error message
    lists the modules that were still waiting.
    """
