"""The module graph: connections, automatic clock-domain crossings.

A :class:`Network` owns a set of modules and the FIFOs connecting them.  Its
:meth:`Network.connect` method is the analogue of a SoftConnections "send /
receive" pair in the paper: the user names a producer port and a consumer
port and the framework creates the channel.  When the two modules declare
different clock domains the framework silently substitutes a
:class:`~repro.core.fifo.SyncFifo`, which is exactly the service the paper
describes as automatic multi-clock support.
"""

from repro.core.errors import ConfigurationError
from repro.core.fifo import Fifo, SyncFifo


class Connection:
    """Record of a single producer-to-consumer channel."""

    def __init__(self, producer, out_port, consumer, in_port, fifo):
        self.producer = producer
        self.out_port = out_port
        self.consumer = consumer
        self.in_port = in_port
        self.fifo = fifo

    @property
    def crosses_clock_domain(self):
        """``True`` when the framework inserted a synchronising FIFO."""
        return isinstance(self.fifo, SyncFifo)

    def __repr__(self):
        return "Connection(%s.%s -> %s.%s via %r)" % (
            self.producer.name,
            self.out_port,
            self.consumer.name,
            self.in_port,
            self.fifo,
        )


class Network:
    """A graph of :class:`~repro.core.module.LIModule` objects and channels.

    Parameters
    ----------
    name:
        Name used in reports.
    default_capacity:
        FIFO capacity used when :meth:`connect` is not given one.  The
        paper's hardware FIFOs hold two elements.
    """

    def __init__(self, name="network", default_capacity=2):
        self.name = name
        self.default_capacity = default_capacity
        self.modules = {}
        self.connections = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, module):
        """Add a module; returns it so calls can be chained inline."""
        if module.name in self.modules:
            raise ConfigurationError(
                "duplicate module name %r in network %r" % (module.name, self.name)
            )
        self.modules[module.name] = module
        return module

    def add_all(self, modules):
        """Add several modules at once."""
        for module in modules:
            self.add(module)

    def connect(self, producer, out_port, consumer, in_port, capacity=None):
        """Create a channel from ``producer.out_port`` to ``consumer.in_port``.

        A plain :class:`~repro.core.fifo.Fifo` is used when both modules are
        in the same clock domain and a :class:`~repro.core.fifo.SyncFifo`
        otherwise.  Returns the :class:`Connection` record.
        """
        if producer.name not in self.modules or consumer.name not in self.modules:
            raise ConfigurationError(
                "both modules must be added to the network before connecting "
                "(%r -> %r)" % (producer.name, consumer.name)
            )
        capacity = capacity if capacity is not None else self.default_capacity
        fifo_name = "%s.%s->%s.%s" % (producer.name, out_port, consumer.name, in_port)
        if producer.clock == consumer.clock:
            fifo = Fifo(capacity=capacity, name=fifo_name)
        else:
            fifo = SyncFifo(
                source_domain=producer.clock,
                sink_domain=consumer.clock,
                capacity=max(capacity, 4),
                name=fifo_name,
            )
        producer.bind_output(out_port, fifo)
        consumer.bind_input(in_port, fifo)
        connection = Connection(producer, out_port, consumer, in_port, fifo)
        self.connections.append(connection)
        return connection

    def chain(self, modules, capacity=None):
        """Connect a list of single-in single-out modules in pipeline order.

        Each consecutive pair is connected ``out`` -> ``in``.  Modules are
        added to the network if they are not already present.
        """
        for module in modules:
            if module.name not in self.modules:
                self.add(module)
        for producer, consumer in zip(modules, modules[1:]):
            self.connect(producer, "out", consumer, "in", capacity=capacity)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def module(self, name):
        """Look up a module by name."""
        try:
            return self.modules[name]
        except KeyError:
            raise ConfigurationError(
                "no module named %r in network %r" % (name, self.name)
            ) from None

    def clock_domains(self):
        """Return the set of clock domains used by modules in this network."""
        return {module.clock for module in self.modules.values()}

    def clock_crossings(self):
        """Return the connections that cross a clock-domain boundary."""
        return [c for c in self.connections if c.crosses_clock_domain]

    def fifos(self):
        """Return every FIFO in the network, in connection order."""
        return [c.fifo for c in self.connections]

    def reset(self):
        """Clear all FIFOs and per-module fire counters."""
        for connection in self.connections:
            connection.fifo.clear()
        for module in self.modules.values():
            module.fire_count = 0
            module.stall_count = 0

    def validate(self):
        """Check that every declared port is connected; raise otherwise.

        Unconnected ports are usually a configuration mistake (the paper's
        plug-n-play flow guarantees complete pipelines); call this after
        building a network to fail fast.
        """
        problems = []
        for module in self.modules.values():
            for port, fifo in module.inputs.items():
                if fifo is None:
                    problems.append("%s.%s (input)" % (module.name, port))
            for port, fifo in module.outputs.items():
                if fifo is None:
                    problems.append("%s.%s (output)" % (module.name, port))
        if problems:
            raise ConfigurationError(
                "unconnected ports in network %r: %s"
                % (self.name, ", ".join(sorted(problems)))
            )

    def __repr__(self):
        return "Network(name=%r, modules=%d, connections=%d)" % (
            self.name,
            len(self.modules),
            len(self.connections),
        )
