"""Clock domains for the multi-clock support described in the paper.

The paper's baseband runs most of the pipeline at 35 MHz but clocks the
per-bit BER prediction unit at 60 MHz; WiLIS inserts the clock crossings
automatically when a user merely declares the desired frequency of a module.
Here a :class:`ClockDomain` is a named frequency.  The
:class:`~repro.core.network.Network` compares the domains of connected
modules and inserts a :class:`~repro.core.fifo.SyncFifo` when they differ,
and the :class:`~repro.core.scheduler.MultiClockScheduler` fires each domain
at its own rate.
"""


class ClockDomain:
    """A named clock with a frequency in MHz.

    Parameters
    ----------
    name:
        Human-readable domain name (for example ``"baseband"`` or
        ``"ber_unit"``).
    frequency_mhz:
        Clock frequency in MHz; must be positive.
    """

    def __init__(self, name, frequency_mhz):
        if frequency_mhz <= 0:
            raise ValueError(
                "clock frequency must be positive, got %r MHz" % (frequency_mhz,)
            )
        self.name = name
        self.frequency_mhz = float(frequency_mhz)

    @property
    def period_us(self):
        """Clock period in microseconds."""
        return 1.0 / self.frequency_mhz

    def cycles_to_us(self, cycles):
        """Convert a cycle count in this domain to microseconds."""
        return cycles * self.period_us

    def us_to_cycles(self, microseconds):
        """Convert a duration in microseconds to (fractional) cycles."""
        return microseconds * self.frequency_mhz

    def __eq__(self, other):
        if not isinstance(other, ClockDomain):
            return NotImplemented
        return self.name == other.name and self.frequency_mhz == other.frequency_mhz

    def __hash__(self):
        return hash((self.name, self.frequency_mhz))

    def __repr__(self):
        return "ClockDomain(name=%r, frequency_mhz=%g)" % (
            self.name,
            self.frequency_mhz,
        )


#: Default domain used for modules that do not declare a clock.  35 MHz is
#: the frequency the paper uses for the bulk of the baseband pipeline.
DEFAULT_CLOCK = ClockDomain("baseband", 35.0)

#: The paper clocks the per-bit BER prediction unit (and both decoders in the
#: synthesis study) at 60 MHz because it operates at per-bit granularity.
BER_UNIT_CLOCK = ClockDomain("ber_unit", 60.0)
