"""WiLIS reproduction: architectural modeling of wireless systems.

This package reproduces, in pure Python, the system described in

    K. E. Fleming, M. C. Ng, S. Gross and Arvind,
    "WiLIS: Architectural Modeling of Wireless Systems", ISPASS 2011.

The top-level subpackages are:

``repro.core``
    The WiLIS framework itself: latency-insensitive modules, bounded FIFO
    channels, a multi-clock scheduler, a plug-n-play module registry and a
    virtual platform with a hardware/software co-simulation split.

``repro.phy``
    An 802.11a/g OFDM baseband: scrambler, convolutional coding, puncturing,
    interleaving, constellation mapping, OFDM modulation and the receive
    chain with a soft demapper and hard-Viterbi / SOVA / SW-BCJR decoders.

``repro.channel``
    Software channel models: AWGN, Rayleigh (Jakes) fading and reproducible
    pseudo-random noise streams.

``repro.softphy``
    The SoftPHY case study: LLR-to-BER conversion, scaling-factor
    calibration and per-packet BER estimation.

``repro.mac``
    SoftRate rate adaptation, an ARQ link layer and partial packet recovery.

``repro.hwmodel``
    Analytical latency and area (LUT/register) models of the decoder
    microarchitectures, standing in for the paper's synthesis results.

``repro.analysis``
    BER statistics, parameter sweeps and table formatting shared by the
    benchmark harness.
"""

from repro._version import __version__

__all__ = ["__version__"]
